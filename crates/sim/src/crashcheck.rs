//! Differential crash-consistency checking: a shadow model of legal
//! post-crash device contents.
//!
//! The [`ShadowModel`] is a minimal oracle that runs *alongside* a device
//! under test. Every write the driver issues is mirrored into the shadow,
//! which tracks — per logical block — the monotone *generation* number the
//! device stamps on that block's data. After a simulated power failure and
//! recovery, the driver hands the device's recovered `(lbn, generation)`
//! mapping to [`ShadowModel::verify`], which checks it against the set of
//! legal post-crash states:
//!
//! * a block whose last write was **durably acknowledged** must be present
//!   with exactly that write's generation (acknowledged writes survive);
//! * a block covered by the single **in-flight** write at the crash point
//!   may legally hold either the previous acknowledged generation (the
//!   write never reached media), the in-flight generation (it did), or —
//!   if the block was never written before — be absent entirely;
//! * a block the shadow never heard of must be absent (nothing is
//!   resurrected by recovery);
//! * the device's live-block count must equal the shadow's.
//!
//! Generations are assigned by the shadow in issue order, one per logical
//! block written, exactly mirroring the device's own stamping (see
//! `FlashCardStore`), so the comparison is differential: two independent
//! implementations of the same bookkeeping must agree after every crash.
//!
//! Everything here is `std`-only, integer-valued, and deterministic.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// First generation number handed out by a fresh [`ShadowModel`] (and by a
/// fresh device under differential test). Generation 0 is reserved for
/// "never written".
pub const FIRST_GENERATION: u64 = 1;

/// A write that has been issued to the device but not yet durably
/// acknowledged at the crash point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    /// First logical block of the write.
    lbn: u64,
    /// Number of blocks covered.
    blocks: u32,
    /// Generation assigned to `lbn`; block `lbn + i` holds `first_gen + i`.
    first_gen: u64,
}

/// The per-block oracle of legal post-crash contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShadowModel {
    /// lbn → generation of the last durably-acknowledged write.
    acked: BTreeMap<u64, u64>,
    /// The at-most-one write in flight at the crash point.
    in_flight: Option<InFlight>,
    /// Next generation to hand out.
    next_gen: u64,
}

impl ShadowModel {
    /// Creates an empty shadow: no block has ever been written.
    pub fn new() -> Self {
        ShadowModel {
            acked: BTreeMap::new(),
            in_flight: None,
            next_gen: FIRST_GENERATION,
        }
    }

    /// Number of logical blocks with acknowledged contents.
    pub fn live_blocks(&self) -> u64 {
        self.acked.len() as u64
    }

    /// The next generation the shadow will assign (for cross-checking the
    /// device's own counter).
    pub fn next_generation(&self) -> u64 {
        self.next_gen
    }

    /// Mirrors an acknowledged multi-block write: blocks `lbn..lbn+blocks`
    /// receive consecutive fresh generations and become durable.
    pub fn write(&mut self, lbn: u64, blocks: u32) {
        self.begin_write(lbn, blocks);
        self.ack_write();
    }

    /// Mirrors issuing a write that has *not* yet been acknowledged.
    /// Generations are assigned now (the device stamps blocks at issue
    /// time); call [`ack_write`](Self::ack_write) once the device
    /// acknowledges, or crash with the write still in flight.
    ///
    /// # Panics
    ///
    /// Panics if a write is already in flight — the torture driver crashes
    /// at op boundaries, so at most one op is ever outstanding.
    pub fn begin_write(&mut self, lbn: u64, blocks: u32) {
        assert!(
            self.in_flight.is_none(),
            "shadow model supports at most one in-flight write"
        );
        self.in_flight = Some(InFlight {
            lbn,
            blocks,
            first_gen: self.next_gen,
        });
        self.next_gen += u64::from(blocks);
    }

    /// Marks the in-flight write durably acknowledged.
    pub fn ack_write(&mut self) {
        if let Some(w) = self.in_flight.take() {
            for i in 0..u64::from(w.blocks) {
                self.acked.insert(w.lbn + i, w.first_gen + i);
            }
        }
    }

    /// Resolves the in-flight write after a crash, from the device's
    /// recovered `(lbn, generation)` mapping (call *after*
    /// [`verify`](Self::verify) has checked it). Blocks the device
    /// recovered with the in-flight generation become acknowledged — they
    /// reached media, so they are now the legal contents; blocks it did
    /// not keep their previous state. The shadow is then ready to mirror
    /// post-recovery operations.
    pub fn observe_recovery(&mut self, observed: &[(u64, u64)]) {
        let Some(w) = self.in_flight.take() else {
            return;
        };
        let found: BTreeMap<u64, u64> = observed.iter().copied().collect();
        for i in 0..u64::from(w.blocks) {
            let lbn = w.lbn + i;
            let gen = w.first_gen + i;
            if found.get(&lbn) == Some(&gen) {
                self.acked.insert(lbn, gen);
            }
        }
    }

    /// Re-aligns the shadow's generation counter with the device's after
    /// a crash. A write torn mid-op stamps only a prefix of its blocks, so
    /// the device's counter can end up *behind* the shadow's (the shadow
    /// assigned the whole range at issue); both sides must agree before
    /// post-recovery writes are mirrored. The abandoned tail generations
    /// were never acknowledged and map to nothing, so reusing them is
    /// unambiguous.
    ///
    /// # Panics
    ///
    /// Panics if the device's counter is *ahead* of the shadow's — the
    /// device stamped generations the shadow never issued.
    pub fn resync_generations(&mut self, device_next: u64) {
        assert!(
            device_next <= self.next_gen,
            "device generation counter {device_next} ahead of shadow {}",
            self.next_gen
        );
        self.next_gen = device_next;
    }

    /// Mirrors an acknowledged trim: blocks `lbn..lbn+blocks` no longer
    /// have legal contents.
    pub fn trim(&mut self, lbn: u64, blocks: u32) {
        for i in 0..u64::from(blocks) {
            self.acked.remove(&(lbn + i));
        }
    }

    /// The set of generations block `lbn` may legally hold after a crash
    /// (`0` in the returned pair encodes "absent is legal").
    pub fn legal(&self, lbn: u64) -> LegalContents {
        let acked = self.acked.get(&lbn).copied();
        let in_flight = self.in_flight.as_ref().and_then(|w| {
            (lbn >= w.lbn && lbn < w.lbn + u64::from(w.blocks)).then(|| w.first_gen + (lbn - w.lbn))
        });
        LegalContents { acked, in_flight }
    }

    /// Checks the device's recovered `(lbn, generation)` mapping against
    /// the legal post-crash states. `observed` need not be sorted and must
    /// contain each lbn at most once. Returns every violation found (empty
    /// means the recovered state is legal).
    pub fn verify(&self, observed: &[(u64, u64)]) -> Vec<Violation> {
        self.verify_with_uncorrectable(observed, &BTreeSet::new())
    }

    /// [`verify`](Self::verify), with an integrity-model escape hatch:
    /// blocks in `uncorrectable` were *reported* lost by the device
    /// (typed [`UncorrectableRead`] errors surfaced to the host), so
    /// their absence or staleness is legal. Everything else is held to
    /// the usual standard — silent corruption of an acknowledged block
    /// remains the one illegal outcome.
    ///
    /// [`UncorrectableRead`]: crate::obs::Event::UncorrectableRead
    pub fn verify_with_uncorrectable(
        &self,
        observed: &[(u64, u64)],
        uncorrectable: &BTreeSet<u64>,
    ) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
        for &(lbn, gen) in observed {
            if seen.insert(lbn, gen).is_some() {
                violations.push(Violation::DuplicateMapping { lbn });
            }
        }

        for (&lbn, &gen) in &self.acked {
            if uncorrectable.contains(&lbn) {
                // The device admitted this block's data is gone; loss is
                // reported, not silent.
                continue;
            }
            let legal = self.legal(lbn);
            match seen.get(&lbn) {
                None => violations.push(Violation::LostWrite {
                    lbn,
                    expected_gen: gen,
                }),
                Some(&found) if !legal.permits(Some(found)) => {
                    violations.push(Violation::StaleData {
                        lbn,
                        found_gen: found,
                        legal,
                    })
                }
                Some(_) => {}
            }
        }

        for (&lbn, &found) in &seen {
            let legal = self.legal(lbn);
            if legal.acked.is_none() && legal.in_flight.is_none() {
                violations.push(Violation::Resurrected {
                    lbn,
                    found_gen: found,
                });
            } else if legal.acked.is_none() && !legal.permits(Some(found)) {
                // Never-acked block covered only by the in-flight write:
                // it may be absent or hold the in-flight generation, but
                // nothing else.
                violations.push(Violation::StaleData {
                    lbn,
                    found_gen: found,
                    legal,
                });
            }
        }

        violations
    }
}

/// The legal post-crash contents of one logical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegalContents {
    /// Generation of the last acknowledged write, if any.
    pub acked: Option<u64>,
    /// Generation the in-flight write would stamp, if it covers the block.
    pub in_flight: Option<u64>,
}

impl LegalContents {
    /// Whether the observed contents (`None` = block absent) are legal.
    pub fn permits(&self, observed: Option<u64>) -> bool {
        match observed {
            // Absent is legal only if there is no acknowledged write.
            None => self.acked.is_none(),
            Some(gen) => self.acked == Some(gen) || self.in_flight == Some(gen),
        }
    }
}

impl fmt::Display for LegalContents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        match self.acked {
            Some(g) => write!(f, "gen {g}")?,
            None => write!(f, "absent")?,
        }
        if let Some(g) = self.in_flight {
            write!(f, ", in-flight gen {g}")?;
        }
        write!(f, "}}")
    }
}

/// One way a recovered device state can be illegal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A durably-acknowledged write is missing after recovery.
    LostWrite {
        /// The logical block whose contents vanished.
        lbn: u64,
        /// Generation of the acknowledged write that should be there.
        expected_gen: u64,
    },
    /// A block holds a generation outside its legal set.
    StaleData {
        /// The logical block.
        lbn: u64,
        /// Generation actually recovered.
        found_gen: u64,
        /// The legal set it should be in.
        legal: LegalContents,
    },
    /// Recovery produced contents for a block that was never written (or
    /// was trimmed) — data rose from the dead.
    Resurrected {
        /// The logical block.
        lbn: u64,
        /// Generation that appeared.
        found_gen: u64,
    },
    /// The device reported the same lbn twice in its recovered mapping.
    DuplicateMapping {
        /// The duplicated logical block.
        lbn: u64,
    },
    /// Device and shadow disagree on the number of live blocks.
    LiveCountMismatch {
        /// Live blocks the device reports.
        device: u64,
        /// Live blocks the shadow expects (± the in-flight write).
        shadow: u64,
    },
    /// The block census no longer partitions capacity.
    CensusImbalance {
        /// Sum of live + free + dead + retired reported by the device.
        total: u64,
        /// The device's block capacity.
        capacity: u64,
    },
    /// A segment retired (marked bad) before the crash came back after it.
    RetirementRegressed {
        /// The segment that un-retired itself.
        segment: u32,
    },
    /// A cleaning pass was torn: some of the victim segment's live blocks
    /// still map into the victim while others were relocated.
    CleaningNotAtomic {
        /// The victim segment of the interrupted cleaning pass.
        victim: u32,
        /// Blocks still mapped into the victim after recovery.
        still_in_victim: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LostWrite { lbn, expected_gen } => write!(
                f,
                "lost write: lbn {lbn} (acknowledged gen {expected_gen}) missing after recovery"
            ),
            Violation::StaleData {
                lbn,
                found_gen,
                legal,
            } => write!(
                f,
                "stale data: lbn {lbn} recovered gen {found_gen}, legal set {legal}"
            ),
            Violation::Resurrected { lbn, found_gen } => write!(
                f,
                "resurrected: lbn {lbn} recovered gen {found_gen} but was never durably written"
            ),
            Violation::DuplicateMapping { lbn } => {
                write!(f, "duplicate mapping: lbn {lbn} appears twice after recovery")
            }
            Violation::LiveCountMismatch { device, shadow } => write!(
                f,
                "live-count mismatch: device reports {device} live blocks, shadow expects {shadow}"
            ),
            Violation::CensusImbalance { total, capacity } => write!(
                f,
                "census imbalance: live+free+dead+retired = {total} != capacity {capacity}"
            ),
            Violation::RetirementRegressed { segment } => write!(
                f,
                "retirement regressed: segment {segment} was retired before the crash but not after"
            ),
            Violation::CleaningNotAtomic {
                victim,
                still_in_victim,
            } => write!(
                f,
                "cleaning not atomic: {still_in_victim} blocks still map into victim segment {victim}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acked_writes_must_survive() {
        let mut s = ShadowModel::new();
        s.write(10, 2); // gens 1, 2
        s.write(10, 1); // gen 3 overwrites lbn 10
        assert_eq!(s.live_blocks(), 2);
        assert!(s.verify(&[(10, 3), (11, 2)]).is_empty());

        let v = s.verify(&[(11, 2)]);
        assert_eq!(
            v,
            vec![Violation::LostWrite {
                lbn: 10,
                expected_gen: 3
            }]
        );

        // An overwritten (stale) generation is not legal once acked.
        let v = s.verify(&[(10, 1), (11, 2)]);
        assert!(matches!(v[0], Violation::StaleData { lbn: 10, .. }));
    }

    #[test]
    fn in_flight_write_permits_old_new_or_absent() {
        let mut s = ShadowModel::new();
        s.write(5, 1); // gen 1
        s.begin_write(5, 2); // gens 2 (lbn 5), 3 (lbn 6, never acked)
                             // Old contents for lbn 5, lbn 6 absent.
        assert!(s.verify(&[(5, 1)]).is_empty());
        // New contents reached media for both.
        assert!(s.verify(&[(5, 2), (6, 3)]).is_empty());
        // lbn 6 may hold only the in-flight generation.
        let v = s.verify(&[(5, 1), (6, 99)]);
        assert!(matches!(v[0], Violation::StaleData { lbn: 6, .. }));
        // Once acked, the old generation stops being legal.
        s.ack_write();
        let v = s.verify(&[(5, 1), (6, 3)]);
        assert!(matches!(v[0], Violation::StaleData { lbn: 5, .. }));
    }

    #[test]
    fn observe_recovery_resolves_the_in_flight_write() {
        // The write reached media: it becomes the acknowledged state.
        let mut s = ShadowModel::new();
        s.write(5, 1); // gen 1
        s.begin_write(5, 1); // gen 2 in flight
        s.observe_recovery(&[(5, 2)]);
        assert!(s.verify(&[(5, 2)]).is_empty());
        assert!(matches!(
            s.verify(&[(5, 1)])[0],
            Violation::StaleData { lbn: 5, .. }
        ));

        // The write never reached media: the old state stays legal, and
        // the shadow accepts a fresh write afterwards.
        let mut s = ShadowModel::new();
        s.write(5, 1); // gen 1
        s.begin_write(5, 1); // gen 2, lost in the crash
        s.observe_recovery(&[(5, 1)]);
        assert!(s.verify(&[(5, 1)]).is_empty());
        s.write(5, 1); // gen 3: begin_write must not see an in-flight op
        assert!(s.verify(&[(5, 3)]).is_empty());
    }

    #[test]
    fn trimmed_and_unknown_blocks_must_stay_dead() {
        let mut s = ShadowModel::new();
        s.write(1, 1);
        s.trim(1, 1);
        let v = s.verify(&[(1, 1)]);
        assert_eq!(
            v,
            vec![Violation::Resurrected {
                lbn: 1,
                found_gen: 1
            }]
        );
        let v = s.verify(&[(42, 7)]);
        assert!(matches!(v[0], Violation::Resurrected { lbn: 42, .. }));
        assert!(s.verify(&[]).is_empty());
    }

    #[test]
    fn reported_uncorrectable_blocks_are_excused() {
        let mut s = ShadowModel::new();
        s.write(10, 2); // gens 1, 2
        s.write(20, 1); // gen 3

        // lbn 10's data was reported uncorrectable: its loss is legal,
        // but unreported losses still fail.
        let reported: BTreeSet<u64> = [10].into_iter().collect();
        assert!(s
            .verify_with_uncorrectable(&[(11, 2), (20, 3)], &reported)
            .is_empty());
        let v = s.verify_with_uncorrectable(&[(11, 2)], &reported);
        assert_eq!(
            v,
            vec![Violation::LostWrite {
                lbn: 20,
                expected_gen: 3
            }]
        );

        // Reporting does not relax checks on blocks that are still there:
        // silent corruption elsewhere is caught.
        let v = s.verify_with_uncorrectable(&[(11, 99), (20, 3)], &reported);
        assert!(matches!(v[0], Violation::StaleData { lbn: 11, .. }));

        // An empty report is plain verify.
        assert_eq!(
            s.verify(&[(20, 3)]),
            s.verify_with_uncorrectable(&[(20, 3)], &BTreeSet::new())
        );
    }

    #[test]
    fn duplicate_mappings_are_flagged() {
        let mut s = ShadowModel::new();
        s.write(3, 1);
        let v = s.verify(&[(3, 1), (3, 1)]);
        assert!(v.contains(&Violation::DuplicateMapping { lbn: 3 }));
    }

    #[test]
    fn violations_render_for_humans() {
        let v = Violation::LostWrite {
            lbn: 9,
            expected_gen: 4,
        };
        assert_eq!(
            v.to_string(),
            "lost write: lbn 9 (acknowledged gen 4) missing after recovery"
        );
        let legal = LegalContents {
            acked: None,
            in_flight: Some(6),
        };
        assert_eq!(legal.to_string(), "{absent, in-flight gen 6}");
        assert!(legal.permits(None));
        assert!(legal.permits(Some(6)));
        assert!(!legal.permits(Some(5)));
    }
}
