#!/usr/bin/env bash
# Validates a --trace-out document with jq:
#
#   scripts/check_trace_schema.sh <trace.json>
#
# The document must carry the mobistore-trace/1 schema tag, a
# displayTimeUnit, and a non-empty traceEvents array in which every
# event is either metadata ("M": process_name/thread_name with a string
# args.name) or a complete span ("X" with numeric ts/dur and integer
# pid/tid). Chrome/Perfetto compatibility rides on exactly these fields.
set -euo pipefail

TRACE="${1:?usage: check_trace_schema.sh <trace.json>}"

command -v jq >/dev/null || { echo "jq is required" >&2; exit 1; }

echo "checking $TRACE against mobistore-trace/1..." >&2

jq -e '.schema == "mobistore-trace/1"' "$TRACE" >/dev/null \
    || { echo "FAIL: schema tag is not mobistore-trace/1" >&2; exit 1; }
jq -e '.displayTimeUnit == "ns"' "$TRACE" >/dev/null \
    || { echo "FAIL: missing displayTimeUnit" >&2; exit 1; }
jq -e '.traceEvents | type == "array" and length > 0' "$TRACE" >/dev/null \
    || { echo "FAIL: traceEvents must be a non-empty array" >&2; exit 1; }

jq -e '
  all(.traceEvents[];
      (.ph == "M" and (.name == "process_name" or .name == "thread_name")
        and (.args.name | type == "string")
        and (.pid | type == "number"))
      or
      (.ph == "X" and (.name | type == "string")
        and (.ts | type == "number") and (.dur | type == "number")
        and (.pid | type == "number") and (.tid | type == "number")))
' "$TRACE" >/dev/null \
    || { echo "FAIL: a trace event is malformed" >&2; exit 1; }

# Both sides of the span taxonomy must appear: whole ops and device work.
jq -e '[.traceEvents[] | select(.ph == "X") | .name]
       | (any(startswith("op/")))
         and (any(. == "disk_seek" or . == "flash_read"
                  or . == "flash_program"))' "$TRACE" >/dev/null \
    || { echo "FAIL: missing op/device span families" >&2; exit 1; }

# Every X event's lane must be disjoint: within one (pid, tid), sorted
# by ts, no event may start before the previous one ended.
jq -e '
  [.traceEvents[] | select(.ph == "X")]
  | group_by([.pid, .tid])
  | all(.[];
        sort_by(.ts) as $g
        | all(range(1; $g | length); . as $i
              | ($g[$i].ts >= $g[$i-1].ts + $g[$i-1].dur - 0.0005)))
' "$TRACE" >/dev/null \
    || { echo "FAIL: overlapping spans within one rendered lane" >&2; exit 1; }

COUNT=$(jq '[.traceEvents[] | select(.ph == "X")] | length' "$TRACE")
echo "ok: trace document is well-formed ($COUNT spans)" >&2
echo "PASS" >&2
