//! Fleet shard-determinism tests.
//!
//! This is one `#[test]` on purpose: `exec::set_jobs` is process-global,
//! so the jobs-1 and jobs-4 runs must happen inside a single test (each
//! integration-test file is its own process, so toggling here cannot race
//! other suites).
//!
//! Two contracts are pinned:
//!
//! 1. **Worker-count independence** — `repro fleet` output, the merged
//!    metrics, and the `--metrics-out` document are byte-identical at
//!    `--jobs 1` and `--jobs 4`.
//! 2. **Shard independence** — every shard's metrics are a pure function
//!    of `(fleet seed, shard index)`: simulating shard `k` alone
//!    reproduces exactly the bytes it contributed in-fleet.

use mobistore::experiments::export::{metrics_json, TargetExport};
use mobistore::experiments::fleet::{self, FleetOptions};
use mobistore::experiments::render::{render_target, RenderOptions};
use mobistore::experiments::Scale;
use mobistore::sim::exec;

#[test]
fn fleet_is_byte_identical_across_jobs_and_shards_are_independent() {
    let opts = FleetOptions {
        shards: 48,
        population: 384,
        ..FleetOptions::default()
    };
    let scale = Scale::quick();
    let render = RenderOptions {
        fleet: opts.clone(),
        ..RenderOptions::default()
    };

    exec::set_jobs(1);
    let serial = fleet::run(scale, &opts).expect("quiet fleet");
    let serial_text = render_target("fleet", scale, &render).text;
    let serial_rows = serial.metrics_rows();
    let serial_doc = metrics_json(
        scale,
        &[TargetExport {
            target: "fleet",
            rows: &serial_rows,
            fleet: None,
            durability: None,
        }],
    );

    exec::set_jobs(4);
    let parallel = fleet::run(scale, &opts).expect("quiet fleet");
    let parallel_text = render_target("fleet", scale, &render).text;
    let parallel_rows = parallel.metrics_rows();
    let parallel_doc = metrics_json(
        scale,
        &[TargetExport {
            target: "fleet",
            rows: &parallel_rows,
            fleet: None,
            durability: None,
        }],
    );

    // 1. Byte-identical report, merged metrics, and export document.
    assert_eq!(serial_text, parallel_text, "report differs across --jobs");
    assert_eq!(
        serial_doc, parallel_doc,
        "metrics export differs across --jobs"
    );
    assert_eq!(
        format!("{:?}", serial.total),
        format!("{:?}", parallel.total),
        "fleet-wide merged metrics differ across --jobs"
    );
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (a, b) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(
            a.digest, b.digest,
            "shard {} differs across --jobs",
            a.index
        );
    }

    // 2. Shard k alone reproduces its in-fleet bytes: re-simulate every
    // shard standalone (still at jobs 4 — simulate_shard is serial) and
    // compare against the digests the fleet run recorded.
    let plan = fleet::fleet_config(&opts).plan();
    assert_eq!(plan.shards.len(), parallel.rows.len());
    for (shard, row) in plan.shards.iter().zip(&parallel.rows) {
        let alone = fleet::simulate_shard(shard, scale);
        assert_eq!(
            fleet::metrics_digest(&alone),
            row.digest,
            "shard {} differs alone vs in-fleet",
            shard.index
        );
        assert_eq!(shard.users, row.users);
    }

    // The fleet-wide row leads the export and carries percentile fields.
    assert_eq!(serial_rows[0].name, "fleet/all");
    assert!(serial_doc.contains("\"name\":\"fleet/all\""));
    assert!(serial_doc.contains("p999_ms"));
}
