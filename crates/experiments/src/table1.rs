//! Table 1 — measured performance of three storage devices on the
//! OmniBook 300.
//!
//! §3: 4-Kbyte reads and writes to 4-Kbyte and 1-Mbyte files, with and
//! without compression (the Intel card always compresses; its
//! "uncompressed" columns are random data). Regenerated through the
//! `mobistore-fsmodel` testbeds.

use std::fmt;

use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp10_datasheet};
use mobistore_fsmodel::compress::DataClass;
use mobistore_fsmodel::mffs::MffsParams;
use mobistore_fsmodel::{doublespace, stacker, DiskTestbed, FlashCardTestbed, FlashDiskTestbed};
use mobistore_sim::units::{KIB, MIB};

/// One Table 1 row: a device × operation, with four throughput cells.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Device name.
    pub device: &'static str,
    /// "Read" or "Write".
    pub operation: &'static str,
    /// Uncompressed 4-Kbyte file throughput (Kbytes/s).
    pub uncompressed_4k: f64,
    /// Uncompressed 1-Mbyte file throughput.
    pub uncompressed_1m: f64,
    /// Compressed 4-Kbyte file throughput.
    pub compressed_4k: f64,
    /// Compressed 1-Mbyte file throughput.
    pub compressed_1m: f64,
    /// The paper's four published cells, in the same order.
    pub paper: [f64; 4],
}

/// The regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Six rows: {cu140, sdp10, Intel} × {Read, Write}.
    pub rows: Vec<Table1Row>,
}

const CHUNK: u64 = 4 * KIB;

/// Runs all micro-benchmarks.
pub fn run() -> Table1 {
    let mut rows = Vec::with_capacity(6);

    // --- Caviar Ultralite cu140 under DOS, optionally DoubleSpace. ---
    let raw = DiskTestbed::new(cu140_datasheet(), None);
    let dbl = DiskTestbed::new(cu140_datasheet(), Some(doublespace()));
    rows.push(Table1Row {
        device: "Caviar Ultralite cu140",
        operation: "Read",
        uncompressed_4k: raw
            .read_file(4 * KIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        uncompressed_1m: raw
            .read_file(MIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        compressed_4k: dbl
            .read_file(4 * KIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        compressed_1m: dbl
            .read_file(MIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        paper: [116.0, 543.0, 64.0, 543.0],
    });
    rows.push(Table1Row {
        device: "Caviar Ultralite cu140",
        operation: "Write",
        uncompressed_4k: raw
            .write_file(4 * KIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        uncompressed_1m: raw
            .write_file(MIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        compressed_4k: dbl
            .write_file(4 * KIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        compressed_1m: dbl
            .write_file(MIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        paper: [76.0, 231.0, 289.0, 146.0],
    });

    // --- SunDisk sdp10 under DOS, optionally Stacker. ---
    let mut raw = FlashDiskTestbed::new(sdp10_datasheet(), None);
    let mut stk = FlashDiskTestbed::new(sdp10_datasheet(), Some(stacker()));
    rows.push(Table1Row {
        device: "SunDisk sdp10",
        operation: "Read",
        uncompressed_4k: raw
            .read_file(4 * KIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        uncompressed_1m: raw
            .read_file(MIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        compressed_4k: stk
            .read_file(4 * KIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        compressed_1m: stk
            .read_file(MIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        paper: [280.0, 410.0, 218.0, 246.0],
    });
    rows.push(Table1Row {
        device: "SunDisk sdp10",
        operation: "Write",
        uncompressed_4k: raw
            .write_file(4 * KIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        uncompressed_1m: raw
            .write_file(MIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        compressed_4k: stk
            .write_file(4 * KIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        compressed_1m: stk
            .write_file(MIB, CHUNK, DataClass::Compressible)
            .throughput_kib_s(),
        paper: [39.0, 40.0, 225.0, 35.0],
    });

    // --- Intel flash card under MFFS 2.00 (always compressing; the
    // "uncompressed" columns are random data). The card is erased before
    // each benchmark, as in §3. ---
    let fresh = || FlashCardTestbed::new(intel_datasheet(), 10 * MIB, MffsParams::mffs2());
    let read_bench = |class: DataClass, file_bytes: u64| {
        let mut tb = fresh();
        let f = tb.create_file();
        let chunks = file_bytes.div_ceil(CHUNK);
        for _ in 0..chunks {
            tb.append_chunk(f, CHUNK.min(file_bytes), class);
        }
        tb.read_file(f, CHUNK, class).throughput_kib_s()
    };
    let write_bench = |class: DataClass, file_bytes: u64| {
        let mut tb = fresh();
        tb.write_file(file_bytes, CHUNK, class).throughput_kib_s()
    };
    rows.push(Table1Row {
        device: "Intel flash card",
        operation: "Read",
        uncompressed_4k: read_bench(DataClass::Random, 4 * KIB),
        uncompressed_1m: read_bench(DataClass::Random, MIB),
        compressed_4k: read_bench(DataClass::Compressible, 4 * KIB),
        compressed_1m: read_bench(DataClass::Compressible, MIB),
        paper: [645.0, 37.0, 345.0, 34.0],
    });
    rows.push(Table1Row {
        device: "Intel flash card",
        operation: "Write",
        uncompressed_4k: write_bench(DataClass::Random, 4 * KIB),
        uncompressed_1m: write_bench(DataClass::Random, MIB),
        compressed_4k: write_bench(DataClass::Compressible, 4 * KIB),
        compressed_1m: write_bench(DataClass::Compressible, MIB),
        paper: [43.0, 21.0, 83.0, 27.0],
    });

    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1: micro-benchmark throughput, Kbytes/s (ours | paper)"
        )?;
        writeln!(
            f,
            "{:<24} {:<6} {:>15} {:>15} {:>15} {:>15}",
            "Device", "Op", "raw 4K", "raw 1M", "comp 4K", "comp 1M"
        )?;
        for r in &self.rows {
            let cell = |ours: f64, paper: f64| format!("{ours:.0}|{paper:.0}");
            writeln!(
                f,
                "{:<24} {:<6} {:>15} {:>15} {:>15} {:>15}",
                r.device,
                r.operation,
                cell(r.uncompressed_4k, r.paper[0]),
                cell(r.uncompressed_1m, r.paper[1]),
                cell(r.compressed_4k, r.paper[2]),
                cell(r.compressed_1m, r.paper[3]),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(t: &'a Table1, device: &str, op: &str) -> &'a Table1Row {
        t.rows
            .iter()
            .find(|r| r.device.contains(device) && r.operation == op)
            .expect("row exists")
    }

    #[test]
    fn quantities_within_2x_of_paper() {
        // The testbeds are models, not the 1994 hardware; require every
        // cell within a factor of 2.1 of Table 1 (most land much closer).
        //
        // One cell is exempt: the paper lists the cu140 *compressed* 1-MB
        // read at 543 KB/s — identical to the uncompressed figure, which
        // would mean DoubleSpace decompression was free on a 25-MHz 386.
        // Our model charges the decompression and lands near 240 KB/s;
        // EXPERIMENTS.md discusses the discrepancy.
        let t = run();
        for r in &t.rows {
            let exempt_cell = r.device.contains("cu140") && r.operation == "Read";
            for (i, (ours, paper)) in [
                (r.uncompressed_4k, r.paper[0]),
                (r.uncompressed_1m, r.paper[1]),
                (r.compressed_4k, r.paper[2]),
                (r.compressed_1m, r.paper[3]),
            ]
            .into_iter()
            .enumerate()
            {
                if exempt_cell && i == 3 {
                    continue;
                }
                let ratio = ours / paper;
                assert!(
                    (1.0 / 2.1..2.1).contains(&ratio),
                    "{} {} cell {i}: ours {ours:.0} vs paper {paper:.0}",
                    r.device,
                    r.operation
                );
            }
        }
    }

    #[test]
    fn headline_observations_hold() {
        let t = run();
        // Disk write throughput grows with file size (no compression).
        let dw = row(&t, "cu140", "Write");
        assert!(dw.uncompressed_1m > dw.uncompressed_4k);
        // Compression makes small disk writes fast and large ones slower.
        assert!(dw.compressed_4k > dw.uncompressed_4k);
        assert!(dw.compressed_1m < dw.uncompressed_1m);
        // Flash disk writes are size-independent.
        let fw = row(&t, "sdp10", "Write");
        assert!((fw.uncompressed_4k / fw.uncompressed_1m - 1.0).abs() < 0.3);
        // Card reads: random beats compressible (decompression skipped),
        // and large files collapse (MFFS anomaly).
        let cr = row(&t, "Intel", "Read");
        assert!(cr.uncompressed_4k > 1.5 * cr.compressed_4k);
        assert!(cr.uncompressed_4k > 5.0 * cr.uncompressed_1m);
        // Card writes degrade with file size too.
        let cw = row(&t, "Intel", "Write");
        assert!(cw.compressed_4k > 2.0 * cw.compressed_1m);
    }

    #[test]
    fn renders_six_rows() {
        let t = run();
        assert_eq!(t.rows.len(), 6);
        let text = t.to_string();
        assert!(text.contains("Intel flash card"));
    }
}
