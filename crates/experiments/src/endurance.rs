//! §5.2 — flash endurance vs storage utilization.
//!
//! Published: over the `mac` trace, moving from 40% to 95% utilization
//! raises the maximum per-segment erase count from 7 to 34 and the mean
//! from 0.9 to 1.9 (+110%); the `hp` erasure count triples. "Higher
//! storage utilizations can result in burning out the flash two to three
//! times faster."

use std::fmt;

use mobistore_core::simulator::simulate;
use mobistore_device::params::intel_datasheet;
use mobistore_flash::store::WearStats;
use mobistore_sim::exec::parallel_map;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// The endpoints the paper quotes.
pub const UTIL_LOW: f64 = 0.40;
/// The high-utilization endpoint.
pub const UTIL_HIGH: f64 = 0.95;

/// One trace's wear at both utilizations.
#[derive(Debug, Clone)]
pub struct EnduranceRow {
    /// Which trace.
    pub workload: Workload,
    /// Wear at 40% utilization.
    pub low: WearStats,
    /// Wear at 95% utilization.
    pub high: WearStats,
}

impl EnduranceRow {
    /// Ratio of total erasures, high vs low utilization.
    pub fn erasure_ratio(&self) -> f64 {
        if self.low.total == 0 {
            f64::INFINITY
        } else {
            self.high.total as f64 / self.low.total as f64
        }
    }
}

/// The §5.2 endurance experiment.
#[derive(Debug, Clone)]
pub struct Endurance {
    /// One row per trace.
    pub rows: Vec<EnduranceRow>,
}

/// Runs the endurance comparison for the paper's two traces (`mac`, `hp`)
/// in parallel.
pub fn run(scale: Scale) -> Endurance {
    let rows = parallel_map(&[Workload::Mac, Workload::Hp], |&w| run_row(w, scale));
    Endurance { rows }
}

/// Runs one trace at both utilizations (in parallel).
pub fn run_row(workload: Workload, scale: Scale) -> EnduranceRow {
    let trace = shared_trace(workload, scale);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let mut wear = parallel_map(&[UTIL_LOW, UTIL_HIGH], |&util| {
        let cfg = flash_card_config(intel_datasheet(), &trace, util).with_dram(dram);
        simulate(&cfg, &trace).wear.expect("flash card wear")
    });
    let high = wear.pop().expect("high point");
    let low = wear.pop().expect("low point");
    EnduranceRow {
        workload,
        low,
        high,
    }
}

impl fmt::Display for Endurance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 5.2: endurance vs utilization (40% vs 95%)")?;
        writeln!(
            f,
            "{:<8} {:>10} {:>10} {:>11} {:>11} {:>12}",
            "trace", "max@40%", "max@95%", "mean@40%", "mean@95%", "total ratio"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>10} {:>10} {:>11.2} {:>11.2} {:>12.2}",
                r.workload.name(),
                r.low.max_erase,
                r.high.max_erase,
                r.low.mean_erase,
                r.high.mean_erase,
                r.erasure_ratio(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_utilization_wears_faster() {
        let row = run_row(Workload::Mac, Scale::quick());
        assert!(
            row.high.total >= row.low.total,
            "high {:?} low {:?}",
            row.high,
            row.low
        );
        assert!(row.high.max_erase >= row.low.max_erase);
    }

    #[test]
    fn renders() {
        let e = Endurance {
            rows: vec![run_row(Workload::Mac, Scale::quick())],
        };
        assert!(e.to_string().contains("total ratio"));
    }
}
