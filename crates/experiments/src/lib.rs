//! Experiment runners that regenerate every table and figure of *Storage
//! Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! Each module reproduces one paper artefact and documents the paper's
//! published values next to the regenerated ones:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — measured micro-benchmark throughput |
//! | [`table2`] | Table 2 — device specifications |
//! | [`table3`] | Table 3 — trace characteristics |
//! | [`table4`] | Table 4(a–c) — energy and response per device per trace |
//! | [`figure1`] | Figure 1 — write latency/throughput vs cumulative KB |
//! | [`figure2`] | Figure 2 — energy & write response vs flash utilization |
//! | [`figure3`] | Figure 3 — OmniBook throughput vs cumulative MB |
//! | [`figure4`] | Figure 4 — energy & response vs DRAM and flash size |
//! | [`figure5`] | Figure 5 — normalized energy & response vs SRAM size |
//! | [`async_cleaning`] | §5.3 — SDP5A asynchronous cleaning |
//! | [`endurance`] | §5.2 — erasures per segment vs utilization |
//! | [`verification`] | §5.1 — testbed-vs-simulator cross-check on `synth` |
//! | [`battery`] | §1/§7 — battery-life extension |
//! | [`ablations`] | cleaning policy, write-back cache, spin-down sweep, flash+SRAM |
//! | [`next_gen`] | Series 2+ projection, wear leveling, card lifetime |
//! | [`sensitivity`] | undocumented-constant perturbations |
//! | [`related`] | §6 eNVy cleaning-duty-cycle cross-check |
//! | [`reliability`] | fault-rate sweep with crash recovery (beyond the paper) |
//! | [`observe`] | state residency + latency percentiles per workload × device |
//! | [`crashcheck`] | crash-consistency torture sweep + end-of-life degradation |
//! | [`integrity`] | wear-coupled bit errors, ECC + read-retry, scrubbing |
//! | [`fleet`] | fleet-scale sharded simulation with merged metrics |
//! | [`durability`] | Reed-Solomon k+m arrays under device deaths (beyond the paper) |
//! | [`profile`] | host-time self-profiling of the simulator's hot paths |
//! | [`throughput`] | wall-clock ops/sec accountability harness (on demand) |
//!
//! [`render`] turns any named target into its exact stdout bytes, shared
//! by the `repro` binary and the golden snapshot tests.
//!
//! Every runner takes a [`Scale`], so tests can run abbreviated versions
//! while the `repro` binary regenerates the full-length experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod async_cleaning;
pub mod battery;
pub mod ckpt;
pub mod crashcheck;
pub mod csv;
pub mod durability;
pub mod endurance;
pub mod export;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod fleet;
pub mod integrity;
pub mod next_gen;
pub mod observe;
pub mod plot;
pub mod profile;
pub mod related;
pub mod reliability;
pub mod render;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod throughput;
pub mod verification;

use std::sync::Arc;

use mobistore_core::config::SystemConfig;
use mobistore_device::params::FlashCardParams;
use mobistore_sim::units::MIB;
use mobistore_trace::record::{DiskOpKind, Trace};
use mobistore_workload::Workload;

/// How much of each workload to run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Fraction of the full trace duration/operation count.
    pub fraction: f64,
    /// RNG seed for workload generation.
    pub seed: u64,
}

impl Scale {
    /// The paper-length experiments (the `repro` binary's default).
    pub fn full() -> Self {
        Scale {
            fraction: 1.0,
            seed: 1994,
        }
    }

    /// An abbreviated scale for unit tests and debug builds.
    pub fn quick() -> Self {
        Scale {
            fraction: 0.02,
            seed: 1994,
        }
    }

    /// A medium scale for benches.
    pub fn medium() -> Self {
        Scale {
            fraction: 0.2,
            seed: 1994,
        }
    }
}

/// Fetches `workload` at this scale through the process-wide
/// [`mobistore_workload::cache`], so every runner shares one generation
/// of each trace per `repro` invocation.
pub fn shared_trace(workload: Workload, scale: Scale) -> Arc<Trace> {
    mobistore_workload::cache::trace(workload, scale.fraction, scale.seed)
}

/// Counts the distinct blocks a trace touches (its flash working set).
///
/// Works on merged `(start, end)` block ranges rather than materializing
/// one entry per block, so a multi-megabyte op costs O(1) here and the
/// whole computation is O(ops log ops) — not O(blocks).
pub fn working_set_blocks(trace: &Trace) -> u64 {
    let mut ranges: Vec<(u64, u64)> = trace
        .ops
        .iter()
        .filter(|op| op.kind != DiskOpKind::Trim)
        .map(|op| (op.lbn, op.lbn + u64::from(op.blocks)))
        .collect();
    ranges.sort_unstable();
    let mut total = 0u64;
    let mut current: Option<(u64, u64)> = None;
    for (start, end) in ranges {
        match &mut current {
            Some((_, cur_end)) if start <= *cur_end => *cur_end = (*cur_end).max(end),
            _ => {
                if let Some((s, e)) = current.replace((start, end)) {
                    total += e - s;
                }
            }
        }
    }
    if let Some((s, e)) = current {
        total += e - s;
    }
    total
}

/// Builds a flash-card configuration whose capacity can hold `trace`'s
/// working set at the requested utilization: the paper's 40-Mbyte default
/// when it fits, otherwise the smallest sufficient whole-segment capacity
/// ("we set the size of the flash to be large relative to the size of the
/// trace", §5.2).
pub fn flash_card_config(params: FlashCardParams, trace: &Trace, utilization: f64) -> SystemConfig {
    let seg = params.segment_size;
    let w_bytes = working_set_blocks(trace) * trace.block_size;
    let needed = (w_bytes as f64 / utilization) as u64 + 2 * seg;
    let capacity = (40 * MIB).max(needed.div_ceil(seg) * seg);
    SystemConfig::flash_card(params)
        .with_flash_capacity(capacity)
        .with_utilization(utilization)
}

/// Right-pads or truncates to form fixed-width table cells.
pub fn pad(s: &str, width: usize) -> String {
    let mut out = String::with_capacity(width);
    for (i, c) in s.chars().enumerate() {
        if i == width {
            break;
        }
        out.push(c);
    }
    while out.chars().count() < width {
        out.push(' ');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_device::params::intel_datasheet;
    use mobistore_sim::time::SimTime;
    use mobistore_trace::record::{DiskOp, FileId};

    #[test]
    fn working_set_ignores_trims_and_dedups() {
        let mut t = Trace::new(1024);
        t.push(DiskOp {
            time: SimTime::ZERO,
            kind: DiskOpKind::Write,
            lbn: 0,
            blocks: 4,
            file: FileId(0),
        });
        t.push(DiskOp {
            time: SimTime::ZERO,
            kind: DiskOpKind::Read,
            lbn: 2,
            blocks: 4,
            file: FileId(0),
        });
        t.push(DiskOp {
            time: SimTime::ZERO,
            kind: DiskOpKind::Trim,
            lbn: 100,
            blocks: 4,
            file: FileId(0),
        });
        assert_eq!(working_set_blocks(&t), 6);
    }

    #[test]
    fn flash_config_grows_capacity_when_needed() {
        let mut t = Trace::new(1024);
        // A 50-MB working set cannot fit in 40 MB at 90%.
        t.push(DiskOp {
            time: SimTime::ZERO,
            kind: DiskOpKind::Write,
            lbn: 0,
            blocks: 50 * 1024,
            file: FileId(0),
        });
        let cfg = flash_card_config(intel_datasheet(), &t, 0.9);
        match cfg.backend {
            mobistore_core::config::BackendConfig::FlashCard { capacity_bytes, .. } => {
                assert!(capacity_bytes > 40 * MIB);
                assert_eq!(capacity_bytes % intel_datasheet().segment_size, 0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn pad_fixes_width() {
        assert_eq!(pad("abc", 5), "abc  ");
        assert_eq!(pad("abcdef", 4), "abcd");
    }
}
