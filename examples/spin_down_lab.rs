//! Spin-down policy laboratory.
//!
//! The paper inherits the 5-second spin-down threshold from [5, 13] as "a
//! good compromise between energy consumption and response time". This
//! example lets you see the whole trade-off curve on any workload, with
//! and without the battery-backed SRAM write buffer that enables deferred
//! spin-up.
//!
//! ```text
//! cargo run --release --example spin_down_lab [mac|dos|hp] [scale]
//! ```

use mobistore::core::config::SystemConfig;
use mobistore::core::simulator::simulate;
use mobistore::device::params::cu140_datasheet;
use mobistore::sim::time::SimDuration;
use mobistore::Workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = match args.next().as_deref() {
        Some("mac") => Workload::Mac,
        Some("dos") => Workload::Dos,
        _ => Workload::Hp,
    };
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);

    println!(
        "Workload: {} at {:.0}% scale",
        workload.name(),
        scale * 100.0
    );
    let trace = workload.generate_scaled(scale, 3);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };

    for (label, sram) in [
        ("with 32-KB SRAM write buffer", 32 * 1024),
        ("without SRAM", 0),
    ] {
        println!("\n-- {label} --");
        println!(
            "{:>12} {:>11} {:>12} {:>12} {:>10} {:>10} {:>10}",
            "threshold",
            "energy(J)",
            "rd mean(ms)",
            "rd max(ms)",
            "spin-ups",
            "mean W",
            "% standby"
        );
        for threshold in [
            Some(SimDuration::from_secs(1)),
            Some(SimDuration::from_secs(5)),
            Some(SimDuration::from_secs(30)),
            Some(SimDuration::from_secs(120)),
            None,
        ] {
            let cfg = SystemConfig::disk(cu140_datasheet())
                .with_dram(dram)
                .with_sram(sram)
                .with_spin_down(threshold);
            let m = simulate(&cfg, &trace);
            let disk = m.disk.expect("disk backend");
            println!(
                "{:>12} {:>11.1} {:>12.2} {:>12.1} {:>10} {:>10.3} {:>10.1}",
                threshold.map_or("never".into(), |t| format!("{}s", t.as_secs_f64())),
                m.energy.get(),
                m.read_response_ms.mean,
                m.read_response_ms.max,
                disk.spin_ups,
                m.mean_power_w(),
                m.state_fraction("standby").unwrap_or(0.0) * 100.0
            );
        }
    }

    println!(
        "\nShort thresholds trade spin-up latency (and spin-up energy) for\n\
         standby time; the 5 s compromise minimises energy without the\n\
         1 s threshold's response-time storms — exactly the paper's choice."
    );
}
