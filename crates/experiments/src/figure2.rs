//! Figure 2 — energy and write response vs flash-card storage utilization.
//!
//! §5.2: each trace is simulated with the Intel card (datasheet, 128-KB
//! segments) at 40–95% utilization. Published shapes: energy rises with
//! utilization (up to +70–190% at 95% vs 40%; the `hp` trace most
//! dramatically); write response holds steady until utilization is high
//! enough for writes to wait on cleaning (up to +30%), with `mac` —
//! read-heavy, so the cleaner keeps up — staying flat.

use std::fmt;

use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::params::intel_datasheet;
use mobistore_sim::exec::parallel_map;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// The utilization sweep points (fractions).
pub const UTILIZATIONS: [f64; 7] = [0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95];

/// One trace's sweep.
#[derive(Debug, Clone)]
pub struct Figure2Curve {
    /// Which trace.
    pub workload: Workload,
    /// Metrics at each utilization, in `UTILIZATIONS` order.
    pub points: Vec<Metrics>,
}

/// The regenerated Figure 2.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// One curve per trace.
    pub curves: Vec<Figure2Curve>,
}

/// Runs the utilization sweep for all three traces.
pub fn run(scale: Scale) -> Figure2 {
    let curves = Workload::TABLE4
        .iter()
        .map(|&w| run_curve(w, scale))
        .collect();
    Figure2 { curves }
}

/// Runs the sweep for one trace, all utilization points in parallel.
pub fn run_curve(workload: Workload, scale: Scale) -> Figure2Curve {
    let trace = shared_trace(workload, scale);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let points = parallel_map(&UTILIZATIONS, |&util| {
        let cfg = flash_card_config(intel_datasheet(), &trace, util).with_dram(dram);
        let mut m = simulate(&cfg, &trace);
        m.name = format!("{} @{util:.0}%", workload.name());
        m
    });
    Figure2Curve { workload, points }
}

impl Figure2Curve {
    /// Energy increase from the 40% point to the 95% point, as a fraction.
    pub fn energy_increase(&self) -> f64 {
        self.points.last().expect("points").energy.get() / self.points[0].energy.get() - 1.0
    }

    /// Mean-write-response increase from 40% to 95%, as a fraction.
    pub fn write_response_increase(&self) -> f64 {
        self.points.last().expect("points").write_response_ms.mean
            / self.points[0].write_response_ms.mean
            - 1.0
    }
}

impl Figure2 {
    /// Renders Figure 2(d) — energy vs utilization — as an ASCII plot.
    pub fn plot(&self) -> String {
        let series: Vec<crate::plot::Series> = self
            .curves
            .iter()
            .map(|c| crate::plot::Series {
                label: c.workload.name().to_owned(),
                points: UTILIZATIONS
                    .iter()
                    .zip(&c.points)
                    .map(|(&u, m)| (u * 100.0, m.energy.get()))
                    .collect(),
            })
            .collect();
        crate::plot::render(
            "Figure 2(d): flash-card energy vs storage utilization",
            "utilization %",
            "J",
            &series,
            72,
            18,
        )
    }
}

impl fmt::Display for Figure2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 2: Intel card (datasheet) vs storage utilization")?;
        writeln!(
            f,
            "{:<8} {:>6} {:>12} {:>14} {:>10} {:>12}",
            "trace", "util%", "energy(J)", "write mean ms", "erasures", "clean waits"
        )?;
        for curve in &self.curves {
            for (util, m) in UTILIZATIONS.iter().zip(&curve.points) {
                let fc = m.flash_card.expect("flash card backend");
                writeln!(
                    f,
                    "{:<8} {:>6.0} {:>12.1} {:>14.3} {:>10} {:>12}",
                    curve.workload.name(),
                    util * 100.0,
                    m.energy.get(),
                    m.write_response_ms.mean,
                    fc.erasures,
                    fc.cleaning_waits,
                )?;
            }
            writeln!(
                f,
                "  -> {}: energy +{:.0}%, write response +{:.0}% at 95% vs 40%",
                curve.workload.name(),
                curve.energy_increase() * 100.0,
                curve.write_response_increase() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_rises_with_utilization() {
        let curve = run_curve(Workload::Dos, Scale::quick());
        let first = curve.points[0].energy.get();
        let last = curve.points.last().unwrap().energy.get();
        assert!(last > first, "energy {first} -> {last}");
        // Cleaning work (the §5.2 mechanism) increases monotonically-ish.
        let copies: Vec<u64> = curve
            .points
            .iter()
            .map(|m| m.flash_card.unwrap().blocks_copied)
            .collect();
        assert!(
            copies.last().unwrap() > copies.first().unwrap(),
            "{copies:?}"
        );
    }

    #[test]
    fn erasure_rate_grows() {
        let curve = run_curve(Workload::Dos, Scale::quick());
        let first = curve.points[0].flash_card.unwrap().erasures;
        let last = curve.points.last().unwrap().flash_card.unwrap().erasures;
        assert!(last > first, "erasures {first} -> {last}");
    }

    #[test]
    fn renders() {
        let fig = Figure2 {
            curves: vec![run_curve(Workload::Dos, Scale::quick())],
        };
        let text = fig.to_string();
        assert!(text.contains("util%"));
        assert!(text.contains("dos"));
    }
}
