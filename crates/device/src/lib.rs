//! Storage device models for the `mobistore` reproduction of *Storage
//! Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! The paper compares three storage architectures (§2):
//!
//! * [`disk::MagneticDisk`] — a spinning hard disk with spin-down power
//!   management (Western Digital Caviar Ultralite CU140, HP Kittyhawk);
//! * [`flashdisk::FlashDisk`] — a flash memory card behind a disk block
//!   interface with per-sector erasure (SunDisk SDP5/SDP5A/SDP10);
//! * the byte-accessible flash memory card (Intel Series 2) — its raw
//!   parameters are here ([`params::FlashCardParams`]), while the segment
//!   management and cleaning machinery lives in `mobistore-flash`.
//!
//! [`params`] is the parameter database: every scalar from the paper's
//! Table 2 plus the measured rates of §3, keyed by the same
//! *(device, source)* labels as the rows of Table 4.
//!
//! All devices account energy with per-state [`mobistore_sim::EnergyMeter`]s
//! and model request queueing internally (a request issued while the device
//! is busy waits), which is what produces the paper's maximum-response
//! columns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod disk;
pub mod flashdisk;
pub mod params;

pub use array::ArrayDevice;
pub use disk::MagneticDisk;
pub use flashdisk::FlashDisk;

/// A typed, recoverable device failure.
///
/// These replace the library's historical `panic!` paths: callers that can
/// degrade gracefully (the simulator's drain mode, the `repro` binary's
/// exit-code mapping) match on the variant, while the old panicking entry
/// points remain as thin wrappers that format the same message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The flash card has exhausted its cleanable capacity (spare guard
    /// spent, nothing reclaimable) and is in read-only end-of-life mode.
    /// Reads and trims still succeed; writes fail with this error.
    ReadOnly {
        /// Live blocks at the end-of-life transition.
        live: u64,
        /// Usable (non-retired) block capacity.
        usable: u64,
        /// Retired (bad-segment) blocks.
        retired: u64,
    },
    /// A flash card was configured with too few segments to hold a
    /// frontier plus an erased reserve.
    TooFewSegments {
        /// Segments the configuration would create.
        segments: u64,
    },
    /// A flash card segment cannot hold even one logical block.
    SegmentTooSmall {
        /// Configured segment size in bytes.
        segment_bytes: u64,
        /// Configured block size in bytes.
        block_bytes: u64,
    },
    /// A read saw more raw bit errors than the ECC budget and the
    /// bounded read-retry could recover; the block's data is lost. The
    /// device stays usable — callers degrade per-block, not per-run.
    Uncorrectable {
        /// The logical block whose data could not be recovered.
        lbn: u64,
        /// Raw bit errors the read saw.
        errors: u32,
    },
    /// An erasure-coded array could not reconstruct one stripe: more
    /// shards are missing than the survivors can decode around (extra
    /// uncorrectable shards on top of dead children). The array stays
    /// usable — other stripes still decode; callers degrade per-block.
    ArrayDegraded {
        /// The logical block whose stripe could not be reconstructed.
        lbn: u64,
        /// Shards missing from the stripe.
        lost: u32,
    },
    /// An erasure-coded array has lost more children than its parity can
    /// tolerate and has degraded to read-only: writes are rejected, and
    /// reads whose stripes span the dead children fail.
    ArrayFailed {
        /// Children currently dead (not yet rebuilt).
        lost: u32,
        /// Concurrent losses the geometry tolerates (`m`).
        tolerated: u32,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DeviceError::ReadOnly {
                live,
                usable,
                retired,
            } => write!(
                f,
                "flash card is read-only at end of life: {live} live of {usable} usable \
                 blocks ({retired} retired) and nothing cleanable"
            ),
            DeviceError::TooFewSegments { segments } => {
                write!(f, "flash card needs at least 2 segments, got {segments}")
            }
            DeviceError::SegmentTooSmall {
                segment_bytes,
                block_bytes,
            } => write!(
                f,
                "flash segment of {segment_bytes} bytes cannot hold one {block_bytes}-byte block"
            ),
            DeviceError::Uncorrectable { lbn, errors } => write!(
                f,
                "uncorrectable read of block {lbn}: {errors} raw bit errors exceed the ECC \
                 budget and read-retry"
            ),
            DeviceError::ArrayDegraded { lbn, lost } => write!(
                f,
                "array cannot reconstruct block {lbn}: {lost} shards of its stripe are \
                 missing, more than the parity can decode around"
            ),
            DeviceError::ArrayFailed { lost, tolerated } => write!(
                f,
                "array failed: {lost} children dead, geometry tolerates {tolerated}; \
                 degraded to read-only"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// How a device treats a request that arrives while it is busy.
///
/// The paper's simulator evaluates each operation independently ("all
/// operations and state transitions are assumed to take the average or
/// 'typical' time", §4.2) — its reported maxima are single-operation worst
/// cases such as wind-down + spin-up. [`QueueDiscipline::OpenLoop`]
/// reproduces that: a request starts at its arrival time regardless of
/// earlier requests, while device *state* (spin status, erased-pool level,
/// cleaning progress) still evolves in time. [`QueueDiscipline::Fifo`]
/// models a real single-server queue and is used by the micro-benchmark
/// testbeds (which issue requests back-to-back) and by the queueing
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Requests wait for earlier requests to finish.
    #[default]
    Fifo,
    /// Requests are served at arrival; busy periods may overlap (the
    /// paper's model).
    OpenLoop,
}

/// The direction of a storage access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Data flows from the device.
    Read,
    /// Data flows to the device.
    Write,
}

/// The interval during which a device served a request.
///
/// A request issued at `t` with `Service { start, end }` waited
/// `start - t` (queueing, spin-up, on-demand cleaning) and experienced a
/// response time of `end - t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Service {
    /// When the device began working on the request.
    pub start: mobistore_sim::time::SimTime,
    /// When the request completed.
    pub end: mobistore_sim::time::SimTime,
}

impl Service {
    /// The time spent servicing (excluding queueing).
    pub fn service_time(&self) -> mobistore_sim::time::SimDuration {
        self.end - self.start
    }

    /// The response time experienced by a request issued at `issued`.
    ///
    /// # Panics
    ///
    /// Panics if `issued` is after `end`.
    pub fn response(
        &self,
        issued: mobistore_sim::time::SimTime,
    ) -> mobistore_sim::time::SimDuration {
        self.end - issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_sim::time::{SimDuration, SimTime};

    #[test]
    fn service_and_response() {
        let svc = Service {
            start: SimTime::from_nanos(100),
            end: SimTime::from_nanos(250),
        };
        assert_eq!(svc.service_time(), SimDuration::from_nanos(150));
        assert_eq!(
            svc.response(SimTime::from_nanos(50)),
            SimDuration::from_nanos(200)
        );
    }
}
