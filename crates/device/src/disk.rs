//! The magnetic hard disk model.
//!
//! Implements the disk architecture of §2 and the simulator assumptions of
//! §4.2:
//!
//! * a spin-down policy turns the spindle off after a configurable idle
//!   threshold (Table 4 uses 5 s); a spun-down disk pays the spin-up delay
//!   (and spin-up power) on the next access;
//! * spin-down itself takes time — a request arriving while the platters
//!   are still winding down must wait out the spin-down *and* the spin-up
//!   (§1: disks "take seconds to spin up and down"), which is what produces
//!   the multi-second maximum response times of Table 4;
//! * repeated accesses to the same file never seek; any other access pays
//!   the average seek, and every transfer pays the average rotational
//!   latency;
//! * energy is integrated over five states: active (seek + transfer),
//!   spinning idle, spinning up, spinning down, and standby.
//!
//! The battery-backed SRAM write buffer that fronts the disk lives in
//! `mobistore-cache`; this model only serves raw accesses.

use mobistore_sim::energy::{EnergyMeter, Joules};
use mobistore_sim::obs::{Event, NoopObserver, Observer};
use mobistore_sim::span::{Span, SpanKind};
use mobistore_sim::time::{SimDuration, SimTime};

use crate::params::DiskParams;
use crate::{Dir, Service};

/// Identifier used for the seek heuristic; mirrors
/// `mobistore_trace::record::FileId` without depending on that crate.
pub type FileTag = u64;

/// When the disk spins down.
///
/// The paper uses a fixed 5 s threshold, "a good compromise between
/// energy consumption and response time" citing Douglis/Krishnan/Marsh
/// and Li et al. (its refs \[5, 13\]). Those same papers propose
/// *adaptive* thresholds; [`SpinDownPolicy::Adaptive`] implements the
/// classic multiplicative scheme: after a spin-down that turned out too
/// eager (the idle period ended before the spin cycle paid for itself),
/// raise the threshold; after keeping the disk spinning through an idle
/// period long enough that spinning down would have saved energy, lower
/// it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpinDownPolicy {
    /// Never spin down.
    Never,
    /// Spin down after a fixed idle threshold (the paper's model).
    Fixed(SimDuration),
    /// Multiplicative adaptive threshold within `[min, max]`, starting at
    /// `initial`.
    Adaptive {
        /// Lower bound on the threshold.
        min: SimDuration,
        /// Upper bound on the threshold.
        max: SimDuration,
        /// Starting threshold.
        initial: SimDuration,
    },
}

impl SpinDownPolicy {
    /// The threshold the policy starts with (`None` for `Never`).
    fn initial_threshold(&self) -> Option<SimDuration> {
        match *self {
            SpinDownPolicy::Never => None,
            SpinDownPolicy::Fixed(t) => Some(t),
            SpinDownPolicy::Adaptive { initial, .. } => Some(initial),
        }
    }
}

/// How the disk charges seek time.
///
/// The paper's simulator uses [`SeekModel::SameFileAverage`]: "repeated
/// accesses to the same file are assumed never to require a seek …
/// otherwise, an access incurs an average seek" (§4.2) — and §5.1 finds
/// measured cu140 writes about twice as slow as simulated "due to our
/// optimistic assumption about avoiding seeks".
/// [`SeekModel::DistanceBased`] is the pessimistic alternative: seek time
/// scales with the square root of the head's travel distance in blocks
/// (the classic short-seek approximation), normalised so that a
/// half-capacity travel costs the datasheet average seek. Comparing the
/// two quantifies how much of the paper's §5.1 divergence the seek
/// assumption explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeekModel {
    /// The paper's assumption: no seek within a file, average seek across
    /// files.
    #[default]
    SameFileAverage,
    /// Every access pays the average seek — the pessimistic model of a
    /// fragmented DOS volume where even same-file accesses travel (data
    /// blocks interleave with FAT and directory clusters).
    AlwaysAverage,
    /// Square-root-of-distance seek from the current head position, with
    /// the given total capacity in blocks.
    DistanceBased {
        /// Device capacity in blocks; half this distance costs the average
        /// seek.
        capacity_blocks: u64,
    },
}

/// Counters the disk maintains alongside energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCounters {
    /// Completed accesses.
    pub ops: u64,
    /// Number of spin-ups paid by requests.
    pub spin_ups: u64,
    /// Number of completed spin-downs (including those a request interrupted
    /// by waiting for completion).
    pub spin_downs: u64,
    /// Bytes read from the media.
    pub bytes_read: u64,
    /// Bytes written to the media.
    pub bytes_written: u64,
    /// Power failures survived (each forcing a FAT replay scan).
    pub power_failures: u64,
    /// Total time spent in post-power-fail recovery scans.
    pub recovery_time: SimDuration,
}

impl DiskCounters {
    /// Adds another disk's counters into this one (fleet aggregation:
    /// counts and durations are all additive).
    pub fn merge(&mut self, other: &DiskCounters) {
        self.ops += other.ops;
        self.spin_ups += other.spin_ups;
        self.spin_downs += other.spin_downs;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.power_failures += other.power_failures;
        self.recovery_time += other.recovery_time;
    }
}

/// A simulated magnetic hard disk with spin-down power management.
///
/// # Examples
///
/// ```
/// use mobistore_device::disk::MagneticDisk;
/// use mobistore_device::params::cu140_datasheet;
/// use mobistore_device::Dir;
/// use mobistore_sim::time::{SimDuration, SimTime};
///
/// let mut disk = MagneticDisk::new(cu140_datasheet(), Some(SimDuration::from_secs(5)));
/// let svc = disk.access(SimTime::ZERO, Dir::Read, 4096, Some(1));
/// // 25.7 ms seek+rotation plus the 4-Kbyte transfer.
/// assert!(svc.end.as_secs_f64() > 0.0257);
/// ```
#[derive(Debug, Clone)]
pub struct MagneticDisk {
    params: DiskParams,
    policy: SpinDownPolicy,
    /// Current effective threshold (`None` = never); adapted over time
    /// under `SpinDownPolicy::Adaptive`.
    spin_down_timeout: Option<SimDuration>,
    queueing: crate::QueueDiscipline,
    seek_model: SeekModel,
    meter: EnergyMeter,
    counters: DiskCounters,
    /// End of the latest activity; the platters are spinning at this
    /// instant (every access and spin-up leaves the disk spinning).
    free_at: SimTime,
    last_file: Option<FileTag>,
    /// Head position (logical block) for the distance-based seek model.
    head_lbn: u64,
}

const CATEGORIES: &[&str] = &["active", "idle", "spinup", "spindown", "standby", "recover"];

impl MagneticDisk {
    /// Creates a disk that spins down after `spin_down_timeout` of
    /// inactivity (`None` keeps it spinning forever).
    pub fn new(params: DiskParams, spin_down_timeout: Option<SimDuration>) -> Self {
        let policy = match spin_down_timeout {
            Some(t) => SpinDownPolicy::Fixed(t),
            None => SpinDownPolicy::Never,
        };
        Self::with_policy(params, policy)
    }

    /// Creates a disk with an explicit [`SpinDownPolicy`].
    pub fn with_policy(params: DiskParams, policy: SpinDownPolicy) -> Self {
        MagneticDisk {
            params,
            spin_down_timeout: policy.initial_threshold(),
            policy,
            queueing: crate::QueueDiscipline::Fifo,
            seek_model: SeekModel::SameFileAverage,
            meter: EnergyMeter::new(CATEGORIES),
            counters: DiskCounters::default(),
            free_at: SimTime::ZERO,
            last_file: None,
            head_lbn: 0,
        }
    }

    /// Sets the queue discipline (see [`crate::QueueDiscipline`]).
    pub fn with_queueing(mut self, discipline: crate::QueueDiscipline) -> Self {
        self.queueing = discipline;
        self
    }

    /// Sets the seek model (see [`SeekModel`]).
    pub fn with_seek_model(mut self, model: SeekModel) -> Self {
        self.seek_model = model;
        self
    }

    /// Returns the parameter set this disk was built with.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Returns the operation counters.
    pub fn counters(&self) -> DiskCounters {
        self.counters
    }

    /// Returns total energy consumed so far, including idle/standby time
    /// already settled.
    pub fn energy(&self) -> Joules {
        self.meter.total()
    }

    /// Returns the energy meter for per-state breakdowns.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Zeroes energy and counters while keeping mechanical state; used at
    /// the warm-up boundary (§4.2).
    pub fn reset_metrics(&mut self) {
        self.meter = EnergyMeter::new(CATEGORIES);
        self.counters = DiskCounters::default();
    }

    /// The current effective spin-down threshold, if any (adapts over
    /// time under the adaptive policy).
    pub fn current_threshold(&self) -> Option<SimDuration> {
        self.spin_down_timeout
    }

    /// The idle duration at which a spin cycle becomes energy-neutral:
    /// shorter idles waste energy by spinning down, longer ones save it.
    pub fn breakeven_idle(&self) -> SimDuration {
        // Extra energy of a spin cycle vs staying spinning-idle for the
        // same wall time, ignoring the standby saving:
        //   cycle = down_t x down_p + up_t x up_p
        //   saved per second of standby = idle_p - standby_p
        let cycle = self.params.spin_down_power * self.params.spin_down_time
            + self.params.spin_up_power * self.params.spin_up_time;
        let idle_equiv =
            self.params.idle_power * (self.params.spin_down_time + self.params.spin_up_time);
        let extra = cycle.get() - idle_equiv.get();
        let save_rate = (self.params.idle_power.get() - self.params.standby_power.get()).max(1e-9);
        (self.params.spin_down_time + self.params.spin_up_time)
            + SimDuration::from_secs_f64(extra.max(0.0) / save_rate)
    }

    /// Adjusts the adaptive threshold after observing a completed idle
    /// gap of length `gap` in which `spun_down` says whether a spin-down
    /// happened.
    fn adapt(&mut self, gap: SimDuration, spun_down: bool) {
        let SpinDownPolicy::Adaptive { min, max, .. } = self.policy else {
            return;
        };
        let Some(current) = self.spin_down_timeout else {
            return;
        };
        let breakeven = self.breakeven_idle();
        let updated = if spun_down {
            if gap < current + breakeven {
                // Too eager: the pause ended before the cycle paid off.
                (current * 2).min(max)
            } else if gap > current + breakeven * 2 {
                // The pause was huge: spinning down sooner would have
                // harvested more standby time.
                (current / 2).max(min)
            } else {
                current
            }
        } else if gap > breakeven {
            // Kept spinning through a pause long enough to have paid for a
            // spin cycle: lower the threshold.
            (current / 2).max(min)
        } else {
            current
        };
        self.spin_down_timeout = Some(updated);
    }

    /// True if at `now` the disk is spun down or winding down (useful to a
    /// deferred spin-up policy).
    pub fn is_spun_down(&self, now: SimTime) -> bool {
        match self.spin_down_timeout {
            None => false,
            Some(timeout) => now > self.free_at && now.saturating_since(self.free_at) > timeout,
        }
    }

    /// Serves one access issued at `now`.
    ///
    /// Under the default seek model, `file` drives the heuristic:
    /// accesses to the same tag as the previous access skip the seek;
    /// `None` always seeks (used for SRAM flushes, which interleave many
    /// files). See [`access_at`](Self::access_at) for the distance-based
    /// model.
    ///
    /// Returns the [`Service`] interval; the caller computes response time
    /// as `service.end - now`.
    pub fn access(&mut self, now: SimTime, dir: Dir, bytes: u64, file: Option<FileTag>) -> Service {
        self.access_at(now, dir, bytes, file, None)
    }

    /// [`access`](Self::access), reporting spin-state transitions to an
    /// observer.
    pub fn access_obs<O: Observer>(
        &mut self,
        now: SimTime,
        dir: Dir,
        bytes: u64,
        file: Option<FileTag>,
        obs: &mut O,
    ) -> Service {
        self.access_at_obs(now, dir, bytes, file, None, obs)
    }

    /// Serves one access issued at `now`, with an optional target block
    /// address for the distance-based seek model ([`SeekModel`]); `lbn` is
    /// ignored under the default model.
    pub fn access_at(
        &mut self,
        now: SimTime,
        dir: Dir,
        bytes: u64,
        file: Option<FileTag>,
        lbn: Option<u64>,
    ) -> Service {
        self.access_at_obs(now, dir, bytes, file, lbn, &mut NoopObserver)
    }

    /// [`access_at`](Self::access_at), reporting spin-state transitions
    /// ([`Event::DiskSpinUp`]/[`Event::DiskSpinDown`]) to an observer.
    pub fn access_at_obs<O: Observer>(
        &mut self,
        now: SimTime,
        dir: Dir,
        bytes: u64,
        file: Option<FileTag>,
        lbn: Option<u64>,
        obs: &mut O,
    ) -> Service {
        let ready = self.settle(now, obs);

        let seek = match self.seek_model {
            SeekModel::SameFileAverage => match (file, self.last_file) {
                (Some(f), Some(prev)) if f == prev => SimDuration::ZERO,
                _ => self.params.avg_seek,
            },
            SeekModel::AlwaysAverage => self.params.avg_seek,
            SeekModel::DistanceBased { capacity_blocks } => {
                let target = lbn.unwrap_or(self.head_lbn);
                let distance = target.abs_diff(self.head_lbn);
                self.head_lbn = target + bytes.div_ceil(512).max(1);
                // sqrt(distance / (capacity/2)) x avg_seek: the classic
                // short-seek curve, anchored so half-capacity travel costs
                // the datasheet average.
                let half = (capacity_blocks / 2).max(1);
                let frac = (distance as f64 / half as f64).sqrt().min(2.0);
                self.params.avg_seek.mul_f64(frac)
            }
        };
        let bandwidth = match dir {
            Dir::Read => self.params.read_bandwidth,
            Dir::Write => self.params.write_bandwidth,
        };
        let active = seek + self.params.avg_rotation + bandwidth.transfer_time(bytes);
        let end = ready + active;
        self.meter
            .charge_for("active", self.params.active_power, active);
        let transfer_start = ready + seek + self.params.avg_rotation;
        obs.span(&Span::new(SpanKind::DiskSeek, ready, transfer_start));
        obs.span(&Span::new(
            SpanKind::DiskTransfer { bytes },
            transfer_start,
            end,
        ));

        self.counters.ops += 1;
        match dir {
            Dir::Read => self.counters.bytes_read += bytes,
            Dir::Write => self.counters.bytes_written += bytes,
        }
        self.last_file = file;
        // Open-loop accesses may overlap; keep the last-activity marker
        // monotone so spin-down timing stays well defined.
        self.free_at = self.free_at.max(end);
        Service { start: ready, end }
    }

    /// Simulates a power failure at `now` followed by the recovery scan the
    /// paper's DOS model implies: with the FAT written synchronously the
    /// on-disk metadata is consistent, but the reboot still re-reads the
    /// FAT and root directory (`fat_bytes`) before the volume is usable.
    ///
    /// The disk loses spindle state, so recovery always pays a spin-up,
    /// then one average seek + rotation and the FAT transfer. The scan is
    /// charged to the `"recover"` energy category at active power.
    pub fn power_fail(&mut self, now: SimTime, fat_bytes: u64) -> Service {
        self.power_fail_obs(now, fat_bytes, &mut NoopObserver)
    }

    /// [`power_fail`](Self::power_fail), reporting spin-state transitions
    /// to an observer (the recovery spin-up is a [`Event::DiskSpinUp`]).
    pub fn power_fail_obs<O: Observer>(
        &mut self,
        now: SimTime,
        fat_bytes: u64,
        obs: &mut O,
    ) -> Service {
        // Settle history up to the failure instant; whatever state the
        // platters were in, the outage leaves them stopped.
        let ready = self.settle(now, obs).max(now);
        obs.record(&Event::DiskSpinUp { t: ready });
        let spun_up = ready + self.params.spin_up_time;
        self.meter.charge_for(
            "spinup",
            self.params.spin_up_power,
            self.params.spin_up_time,
        );
        self.counters.spin_ups += 1;

        let scan = self.params.avg_seek
            + self.params.avg_rotation
            + self.params.read_bandwidth.transfer_time(fat_bytes);
        let end = spun_up + scan;
        self.meter
            .charge_for("recover", self.params.active_power, scan);

        self.counters.power_failures += 1;
        self.counters.recovery_time += end - ready;
        self.counters.bytes_read += fat_bytes;
        // The scan moved the head; the same-file heuristic must re-seek.
        self.last_file = None;
        self.head_lbn = 0;
        self.free_at = self.free_at.max(end);
        Service { start: ready, end }
    }

    /// Accounts for the trailing idle period at the end of a simulation so
    /// the energy integral covers `[0, end_of_trace]`.
    pub fn finish(&mut self, end: SimTime) {
        self.finish_obs(end, &mut NoopObserver);
    }

    /// [`finish`](Self::finish), reporting a trailing spin-down, if any,
    /// to an observer.
    pub fn finish_obs<O: Observer>(&mut self, end: SimTime, obs: &mut O) {
        self.settle_idle_only(end, obs);
    }

    /// Settles the idle gap before a request arriving at `now` and returns
    /// the time at which the platters are ready to serve it.
    fn settle<O: Observer>(&mut self, now: SimTime, obs: &mut O) -> SimTime {
        if now <= self.free_at {
            // The disk never went idle, so no state change and no idle
            // energy to account. Under FIFO the request queues; open-loop
            // serves it at arrival (the paper's independent-operation
            // model).
            return match self.queueing {
                crate::QueueDiscipline::Fifo => self.free_at,
                crate::QueueDiscipline::OpenLoop => now,
            };
        }
        let gap = now - self.free_at;
        let Some(timeout) = self.spin_down_timeout else {
            self.meter.charge_for("idle", self.params.idle_power, gap);
            return now;
        };
        if gap <= timeout {
            self.meter.charge_for("idle", self.params.idle_power, gap);
            self.adapt(gap, false);
            return now;
        }
        self.adapt(gap, true);

        // The disk began spinning down `timeout` after it went idle.
        self.meter
            .charge_for("idle", self.params.idle_power, timeout);
        obs.record(&Event::DiskSpinDown {
            t: self.free_at + timeout,
        });
        let down_complete = self.free_at + timeout + self.params.spin_down_time;
        self.counters.spin_downs += 1;
        let spin_up_start = if now < down_complete {
            // Mid-spin-down: wait out the remaining wind-down.
            self.meter.charge_for(
                "spindown",
                self.params.spin_down_power,
                self.params.spin_down_time,
            );
            down_complete
        } else {
            self.meter.charge_for(
                "spindown",
                self.params.spin_down_power,
                self.params.spin_down_time,
            );
            self.meter
                .charge_for("standby", self.params.standby_power, now - down_complete);
            now
        };
        obs.record(&Event::DiskSpinUp { t: spin_up_start });
        self.meter.charge_for(
            "spinup",
            self.params.spin_up_power,
            self.params.spin_up_time,
        );
        self.counters.spin_ups += 1;
        spin_up_start + self.params.spin_up_time
    }

    /// Settles idle time up to `end` without serving a request (end of
    /// simulation).
    fn settle_idle_only<O: Observer>(&mut self, end: SimTime, obs: &mut O) {
        if end <= self.free_at {
            return;
        }
        let gap = end - self.free_at;
        match self.spin_down_timeout {
            None => self.meter.charge_for("idle", self.params.idle_power, gap),
            Some(timeout) if gap <= timeout => {
                self.meter.charge("idle", self.params.idle_power * gap);
            }
            Some(timeout) => {
                self.meter
                    .charge_for("idle", self.params.idle_power, timeout);
                let after = gap - timeout;
                let down = after.min(self.params.spin_down_time);
                self.meter
                    .charge_for("spindown", self.params.spin_down_power, down);
                if after > self.params.spin_down_time {
                    self.counters.spin_downs += 1;
                    obs.record(&Event::DiskSpinDown {
                        t: self.free_at + timeout,
                    });
                    self.meter.charge_for(
                        "standby",
                        self.params.standby_power,
                        after - self.params.spin_down_time,
                    );
                }
            }
        }
        self.free_at = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::cu140_datasheet;
    use mobistore_sim::units::KIB;

    fn disk() -> MagneticDisk {
        MagneticDisk::new(cu140_datasheet(), Some(SimDuration::from_secs(5)))
    }

    #[test]
    fn first_access_pays_seek_and_rotation() {
        let mut d = disk();
        let svc = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        assert_eq!(svc.start, SimTime::ZERO);
        // 17.4 ms seek + 8.3 ms rotation, no transfer.
        assert_eq!((svc.end - svc.start).as_millis_f64(), 25.7);
    }

    #[test]
    fn same_file_skips_seek() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        let second = d.access(first.end, Dir::Read, 0, Some(1));
        assert_eq!((second.end - second.start).as_millis_f64(), 8.3);
        // A different file seeks again.
        let third = d.access(second.end, Dir::Read, 0, Some(2));
        assert_eq!((third.end - third.start).as_millis_f64(), 25.7);
    }

    #[test]
    fn none_tag_always_seeks() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Write, 0, None);
        let second = d.access(first.end, Dir::Write, 0, None);
        assert_eq!((second.end - second.start).as_millis_f64(), 25.7);
    }

    #[test]
    fn transfer_time_uses_bandwidth() {
        let mut d = disk();
        let svc = d.access(SimTime::ZERO, Dir::Read, 2125 * KIB, Some(1));
        let expect = 25.7e-3 + 1.0;
        assert!(((svc.end - svc.start).as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn requests_queue_behind_busy_disk() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Read, 2125 * KIB, Some(1));
        // Issued while the first is still transferring.
        let second = d.access(SimTime::from_secs_f64(0.1), Dir::Read, 0, Some(1));
        assert_eq!(second.start, first.end);
    }

    #[test]
    fn idle_within_timeout_keeps_spinning() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        let later = first.end + SimDuration::from_secs(4);
        assert!(!d.is_spun_down(later));
        let svc = d.access(later, Dir::Read, 0, Some(1));
        assert_eq!(svc.start, later, "no spin-up penalty");
        assert_eq!(d.counters().spin_ups, 0);
    }

    #[test]
    fn long_idle_spins_down_and_next_access_spins_up() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        let later = first.end + SimDuration::from_secs(60);
        assert!(d.is_spun_down(later));
        let svc = d.access(later, Dir::Read, 0, Some(1));
        // Full spin-up delay precedes service.
        assert_eq!(svc.start, later + SimDuration::from_secs(1));
        assert_eq!(d.counters().spin_ups, 1);
        assert_eq!(d.counters().spin_downs, 1);
    }

    #[test]
    fn access_during_spin_down_waits_for_wind_down() {
        let p = cu140_datasheet();
        let (timeout, down, up) = (SimDuration::from_secs(5), p.spin_down_time, p.spin_up_time);
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        // Arrive 1 s into the 2.5 s spin-down window.
        let arrival = first.end + timeout + SimDuration::from_secs(1);
        let svc = d.access(arrival, Dir::Read, 0, Some(1));
        let expected_start = first.end + timeout + down + up;
        assert_eq!(svc.start, expected_start);
        // This is the worst case: response exceeds spin-up alone.
        assert!(svc.start - arrival > up);
    }

    #[test]
    fn never_spin_down_policy() {
        let mut d = MagneticDisk::new(cu140_datasheet(), None);
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        let later = first.end + SimDuration::from_hours(1);
        assert!(!d.is_spun_down(later));
        let svc = d.access(later, Dir::Read, 0, Some(1));
        assert_eq!(svc.start, later);
        // The whole hour was spinning idle at 0.7 W.
        let idle = d.meter().category("idle");
        assert!((idle.get() - 0.7 * 3600.0).abs() < 1.0);
    }

    #[test]
    fn energy_accounts_every_state() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Write, 4 * KIB, Some(1));
        let later = first.end + SimDuration::from_secs(100);
        let _ = d.access(later, Dir::Read, 4 * KIB, Some(1));
        let m = d.meter();
        for cat in ["active", "idle", "spinup", "spindown", "standby"] {
            assert!(m.category(cat).get() > 0.0, "missing energy in {cat}");
        }
        // Idle capped at the 5 s threshold: 0.7 W x 5 s.
        assert!((m.category("idle").get() - 3.5).abs() < 1e-6);
        // Standby covers 100 - 5 - 2.5 = 92.5 s at 0.015 W.
        assert!((m.category("standby").get() - 92.5 * 0.015).abs() < 1e-6);
        // Spin-up: 3 W x 1 s.
        assert!((m.category("spinup").get() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn finish_settles_trailing_idle() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        d.finish(first.end + SimDuration::from_secs(2));
        assert!((d.meter().category("idle").get() - 1.4).abs() < 1e-9);

        // And a trailing gap long enough to spin down reaches standby.
        let mut d2 = disk();
        let first = d2.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        d2.finish(first.end + SimDuration::from_secs(100));
        assert!(d2.meter().category("standby").get() > 0.0);
        assert_eq!(d2.counters().spin_downs, 1);
    }

    #[test]
    fn reset_metrics_keeps_state() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(7));
        d.reset_metrics();
        assert_eq!(d.energy().get(), 0.0);
        assert_eq!(d.counters().ops, 0);
        // Mechanical state survives: same-file access still skips the seek.
        let svc = d.access(first.end, Dir::Read, 0, Some(7));
        assert_eq!((svc.end - svc.start).as_millis_f64(), 8.3);
    }

    #[test]
    fn breakeven_is_seconds_for_the_cu140() {
        let d = disk();
        let be = d.breakeven_idle().as_secs_f64();
        // Spin cycle: 2.5 s x 0.7 W + 1 s x 3 W = 4.75 J; idle-equivalent
        // 3.5 s x 0.7 = 2.45 J; extra 2.3 J / 0.685 W/s saving = 3.36 s;
        // plus the 3.5 s cycle time: ~6.9 s.
        assert!((6.0..8.0).contains(&be), "breakeven {be}");
    }

    #[test]
    fn adaptive_threshold_rises_after_eager_spin_down() {
        let policy = SpinDownPolicy::Adaptive {
            min: SimDuration::from_secs(1),
            max: SimDuration::from_secs(60),
            initial: SimDuration::from_secs(2),
        };
        let mut d = MagneticDisk::with_policy(cu140_datasheet(), policy);
        assert_eq!(d.current_threshold(), Some(SimDuration::from_secs(2)));
        let svc = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        // A 3 s pause: spin-down fired (threshold 2 s) but the pause ended
        // far before breakeven -> threshold doubles.
        let _ = d.access(svc.end + SimDuration::from_secs(3), Dir::Read, 0, Some(1));
        assert_eq!(d.current_threshold(), Some(SimDuration::from_secs(4)));
    }

    #[test]
    fn adaptive_threshold_falls_after_long_kept_spinning_gaps() {
        let policy = SpinDownPolicy::Adaptive {
            min: SimDuration::from_secs(1),
            max: SimDuration::from_secs(60),
            initial: SimDuration::from_secs(40),
        };
        let mut d = MagneticDisk::with_policy(cu140_datasheet(), policy);
        let mut t = d.access(SimTime::ZERO, Dir::Read, 0, Some(1)).end;
        // 30 s pauses never trigger the 40 s threshold, but exceed
        // breakeven: the policy should lower the threshold toward them.
        for _ in 0..4 {
            t = d
                .access(t + SimDuration::from_secs(30), Dir::Read, 0, Some(1))
                .end;
        }
        let threshold = d.current_threshold().unwrap();
        assert!(
            threshold < SimDuration::from_secs(40),
            "threshold {threshold}"
        );
        assert!(threshold >= SimDuration::from_secs(1));
    }

    #[test]
    fn adaptive_threshold_respects_bounds() {
        let policy = SpinDownPolicy::Adaptive {
            min: SimDuration::from_secs(2),
            max: SimDuration::from_secs(8),
            initial: SimDuration::from_secs(8),
        };
        let mut d = MagneticDisk::with_policy(cu140_datasheet(), policy);
        let mut t = d.access(SimTime::ZERO, Dir::Read, 0, Some(1)).end;
        for _ in 0..10 {
            t = d
                .access(t + SimDuration::from_secs(3600), Dir::Read, 0, Some(1))
                .end;
        }
        // Long pauses push the threshold down, but never below min.
        assert_eq!(d.current_threshold(), Some(SimDuration::from_secs(2)));
        for _ in 0..10 {
            t = d
                .access(t + SimDuration::from_secs(6), Dir::Read, 0, Some(1))
                .end;
        }
        // Eager spin-downs push it up, but never above max.
        assert_eq!(d.current_threshold(), Some(SimDuration::from_secs(8)));
    }

    #[test]
    fn fixed_policy_never_adapts() {
        let mut d = disk();
        let mut t = d.access(SimTime::ZERO, Dir::Read, 0, Some(1)).end;
        for _ in 0..5 {
            t = d
                .access(t + SimDuration::from_secs(6), Dir::Read, 0, Some(1))
                .end;
        }
        assert_eq!(d.current_threshold(), Some(SimDuration::from_secs(5)));
    }

    #[test]
    fn always_average_model_seeks_every_time() {
        let mut d = MagneticDisk::new(cu140_datasheet(), Some(SimDuration::from_secs(5)))
            .with_seek_model(SeekModel::AlwaysAverage);
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        let second = d.access(first.end, Dir::Read, 0, Some(1));
        // Same file, but the fragmented model still pays the full seek.
        assert_eq!((second.end - second.start).as_millis_f64(), 25.7);
    }

    #[test]
    fn distance_model_scales_with_travel() {
        let mut d =
            MagneticDisk::new(cu140_datasheet(), None).with_seek_model(SeekModel::DistanceBased {
                capacity_blocks: 80_000,
            });
        // Head starts at 0; a far target costs more than a near one.
        let far = d.access_at(SimTime::ZERO, Dir::Read, 0, Some(1), Some(40_000));
        let far_time = far.end - far.start;
        // Now a short hop from ~40_000.
        let near = d.access_at(far.end, Dir::Read, 0, Some(2), Some(40_100));
        let near_time = near.end - near.start;
        assert!(far_time > near_time, "far {far_time} vs near {near_time}");
        // Half-capacity travel costs exactly seek + rotation.
        assert!((far_time.as_millis_f64() - 25.7).abs() < 0.1, "{far_time}");
        // A zero-distance access costs rotation only.
        let stay = d.access_at(near.end, Dir::Read, 0, Some(3), None);
        assert!(((stay.end - stay.start).as_millis_f64() - 8.3).abs() < 0.1);
    }

    #[test]
    fn distance_model_caps_long_seeks() {
        let mut d =
            MagneticDisk::new(cu140_datasheet(), None).with_seek_model(SeekModel::DistanceBased {
                capacity_blocks: 100,
            });
        // Travel far beyond capacity: the sqrt curve is clamped at 2x.
        let svc = d.access_at(SimTime::ZERO, Dir::Read, 0, Some(1), Some(1_000_000));
        let ms = (svc.end - svc.start).as_millis_f64();
        assert!((ms - (2.0 * 17.4 + 8.3)).abs() < 0.1, "{ms}");
    }

    #[test]
    fn power_fail_replays_fat_after_spin_up() {
        let mut d = disk();
        let first = d.access(SimTime::ZERO, Dir::Read, 0, Some(1));
        let svc = d.power_fail(first.end, 128 * KIB);
        let c = d.counters();
        assert_eq!(c.power_failures, 1);
        assert_eq!(c.spin_ups, 1);
        assert_eq!(c.recovery_time, svc.end - svc.start);
        assert!(d.meter().category("recover").get() > 0.0);
        // Recovery pays the 1 s spin-up before the 25.7 ms scan starts.
        assert!((svc.end - svc.start).as_secs_f64() > 1.0257);
        // The scan moved the head: the same-file heuristic seeks again.
        let next = d.access(svc.end, Dir::Read, 0, Some(1));
        assert_eq!((next.end - next.start).as_millis_f64(), 25.7);
    }

    #[test]
    fn observer_sees_spin_transitions() {
        use mobistore_sim::obs::CountingObserver;
        let mut d = disk();
        let mut obs = CountingObserver::default();
        let first = d.access_obs(SimTime::ZERO, Dir::Read, 0, Some(1), &mut obs);
        let later = first.end + SimDuration::from_secs(60);
        let _ = d.access_obs(later, Dir::Read, 0, Some(1), &mut obs);
        assert_eq!(obs.counts.get("disk_spin_down"), 1);
        assert_eq!(obs.counts.get("disk_spin_up"), 1);
        // The observed run's counters match the unobserved model's.
        assert_eq!(d.counters().spin_downs, 1);
        assert_eq!(d.counters().spin_ups, 1);
    }

    #[test]
    fn counters_track_bytes() {
        let mut d = disk();
        let s = d.access(SimTime::ZERO, Dir::Read, 1000, Some(1));
        let _ = d.access(s.end, Dir::Write, 500, Some(1));
        let c = d.counters();
        assert_eq!(c.ops, 2);
        assert_eq!(c.bytes_read, 1000);
        assert_eq!(c.bytes_written, 500);
    }
}
