//! An intrusive LRU list over `u64` keys.
//!
//! The buffer cache needs O(1) lookup, O(1) touch (move to front), and O(1)
//! eviction of the least-recently-used block. This is a classic
//! doubly-linked list threaded through a slab of nodes, with a `HashMap`
//! index — no unsafe code, no external crates.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

/// An LRU set of `u64` keys with a fixed capacity in entries.
///
/// # Examples
///
/// ```
/// use mobistore_cache::lru::LruSet;
///
/// let mut lru = LruSet::new(2);
/// assert_eq!(lru.insert(1), None);
/// assert_eq!(lru.insert(2), None);
/// lru.touch(1); // 1 is now most recent
/// assert_eq!(lru.insert(3), Some(2), "2 was the LRU entry");
/// ```
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    index: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruSet {
    /// Creates an empty set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruSet {
            capacity,
            index: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity.min(4096)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Returns the number of keys currently held.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns true if no keys are held.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Returns the capacity in keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns true if `key` is present (without touching recency).
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Marks `key` most-recently-used; returns false if absent.
    pub fn touch(&mut self, key: u64) -> bool {
        let Some(&idx) = self.index.get(&key) else {
            return false;
        };
        self.unlink(idx);
        self.push_front(idx);
        true
    }

    /// Inserts `key` as most-recently-used; if the set is full, evicts and
    /// returns the least-recently-used key. Re-inserting a present key just
    /// touches it.
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        if self.touch(key) {
            return None;
        }
        let evicted = if self.index.len() == self.capacity {
            let lru_idx = self.tail;
            debug_assert_ne!(lru_idx, NIL);
            let old = self.nodes[lru_idx].key;
            self.unlink(lru_idx);
            self.index.remove(&old);
            self.free.push(lru_idx);
            Some(old)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.index.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes `key`; returns true if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let Some(idx) = self.index.remove(&key) else {
            return false;
        };
        self.unlink(idx);
        self.free.push(idx);
        true
    }

    /// Removes and returns the least-recently-used key.
    pub fn pop_lru(&mut self) -> Option<u64> {
        if self.tail == NIL {
            return None;
        }
        let key = self.nodes[self.tail].key;
        self.remove(key);
        Some(key)
    }

    /// Iterates keys from most to least recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = u64> + '_ {
        MruIter {
            set: self,
            cursor: self.head,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

struct MruIter<'a> {
    set: &'a LruSet,
    cursor: usize,
}

impl Iterator for MruIter<'_> {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.set.nodes[self.cursor];
        self.cursor = node.next;
        Some(node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut lru = LruSet::new(3);
        assert!(lru.is_empty());
        lru.insert(10);
        lru.insert(20);
        assert!(lru.contains(10) && lru.contains(20) && !lru.contains(30));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut lru = LruSet::new(3);
        lru.insert(1);
        lru.insert(2);
        lru.insert(3);
        assert_eq!(lru.insert(4), Some(1));
        assert_eq!(lru.insert(5), Some(2));
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn touch_changes_eviction_order() {
        let mut lru = LruSet::new(3);
        lru.insert(1);
        lru.insert(2);
        lru.insert(3);
        assert!(lru.touch(1));
        assert_eq!(lru.insert(4), Some(2));
    }

    #[test]
    fn reinsert_touches() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(3), Some(2));
    }

    #[test]
    fn remove_frees_slot() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert!(lru.remove(1));
        assert!(!lru.remove(1));
        assert_eq!(lru.insert(3), None, "no eviction after a removal");
    }

    #[test]
    fn pop_lru_drains_in_order() {
        let mut lru = LruSet::new(3);
        lru.insert(1);
        lru.insert(2);
        lru.insert(3);
        lru.touch(1);
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(3));
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn iter_mru_order() {
        let mut lru = LruSet::new(4);
        for k in [1, 2, 3, 4] {
            lru.insert(k);
        }
        lru.touch(2);
        let order: Vec<u64> = lru.iter_mru().collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn slot_reuse_after_heavy_churn() {
        let mut lru = LruSet::new(8);
        for k in 0..10_000u64 {
            lru.insert(k);
            if k % 3 == 0 {
                lru.remove(k.saturating_sub(1));
            }
        }
        assert!(lru.len() <= 8);
        // The slab should not grow past capacity + churn slack.
        assert!(lru.nodes.len() <= 16, "slab leaked: {}", lru.nodes.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = LruSet::new(0);
    }
}
