//! CLI robustness: malformed invocations exit with the typed usage code
//! (2) and a clean `error:` line — never a panic or backtrace.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro spawns")
}

fn assert_usage_error(args: &[&str], expect_in_stderr: &str) {
    let out = repro(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, got {:?}; stderr:\n{stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("error:"),
        "{args:?} stderr missing 'error:' line:\n{stderr}"
    );
    assert!(
        stderr.contains(expect_in_stderr),
        "{args:?} stderr missing {expect_in_stderr:?}:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?} panicked instead of reporting a usage error:\n{stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} stderr missing the usage line:\n{stderr}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_error(&["--frobnicate"], "unknown flag --frobnicate");
}

#[test]
fn unknown_target_is_a_usage_error() {
    assert_usage_error(&["warp"], "unknown target warp");
}

#[test]
fn malformed_fault_rates_are_usage_errors() {
    assert_usage_error(&["--fault-rates", "0.1,banana"], "--fault-rates");
    assert_usage_error(&["--fault-rates", "1.5"], "--fault-rates");
    assert_usage_error(&["--fault-rates", ""], "--fault-rates");
    assert_usage_error(&["--fault-rates"], "--fault-rates");
}

#[test]
fn malformed_ber_rates_are_usage_errors() {
    assert_usage_error(&["--ber-rates", "nan"], "--ber-rates");
    assert_usage_error(&["--ber-rates", "2,-1"], "--ber-rates");
    assert_usage_error(&["--ber-rates", "0,banana"], "--ber-rates");
    assert_usage_error(&["--ber-rates", "inf"], "--ber-rates");
    assert_usage_error(&["--ber-rates", ""], "--ber-rates");
    assert_usage_error(&["--ber-rates"], "--ber-rates");
}

#[test]
fn malformed_ber_seed_is_a_usage_error() {
    assert_usage_error(&["--ber-seed", "banana"], "--ber-seed");
    assert_usage_error(&["--ber-seed", "-1"], "--ber-seed");
    assert_usage_error(&["--ber-seed"], "--ber-seed");
}

#[test]
fn malformed_scrub_interval_is_a_usage_error() {
    assert_usage_error(&["--scrub-interval", "nan"], "--scrub-interval");
    assert_usage_error(&["--scrub-interval", "-5"], "--scrub-interval");
    assert_usage_error(&["--scrub-interval", "soon"], "--scrub-interval");
    assert_usage_error(&["--scrub-interval"], "--scrub-interval");
}

#[test]
fn malformed_fault_power_interval_is_a_usage_error() {
    assert_usage_error(&["--fault-power-interval", "nan"], "--fault-power-interval");
    assert_usage_error(&["--fault-power-interval", "-1"], "--fault-power-interval");
}

#[test]
fn malformed_crash_seed_is_a_usage_error() {
    assert_usage_error(&["--crash-seed", "banana"], "--crash-seed");
    assert_usage_error(&["--crash-seed", "-1"], "--crash-seed");
    assert_usage_error(&["--crash-seed"], "--crash-seed");
}

#[test]
fn malformed_crash_points_is_a_usage_error() {
    assert_usage_error(&["--crash-points", "0"], "--crash-points");
    assert_usage_error(&["--crash-points", "some"], "--crash-points");
}

#[test]
fn malformed_scale_is_a_usage_error() {
    assert_usage_error(&["--scale", "2.0"], "--scale");
    assert_usage_error(&["--scale", "nope"], "--scale");
}

#[test]
fn help_exits_zero_with_usage() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "missing usage text:\n{stderr}");
    assert!(stderr.contains("crashcheck"), "usage omits crashcheck");
}

#[test]
fn malformed_fleet_shards_are_usage_errors() {
    assert_usage_error(&["--fleet-shards", "0"], "--fleet-shards");
    assert_usage_error(&["--fleet-shards", "-4"], "--fleet-shards");
    assert_usage_error(&["--fleet-shards", "nan"], "--fleet-shards");
    assert_usage_error(&["--fleet-shards", "many"], "--fleet-shards");
    assert_usage_error(&["--fleet-shards", "1.5"], "--fleet-shards");
    assert_usage_error(&["--fleet-shards"], "--fleet-shards");
}

#[test]
fn malformed_fleet_population_is_a_usage_error() {
    assert_usage_error(&["--fleet-population", "0"], "--fleet-population");
    assert_usage_error(&["--fleet-population", "-1"], "--fleet-population");
    assert_usage_error(&["--fleet-population", "nan"], "--fleet-population");
    assert_usage_error(&["--fleet-population", "everyone"], "--fleet-population");
    assert_usage_error(&["--fleet-population"], "--fleet-population");
}

#[test]
fn malformed_fleet_seed_is_a_usage_error() {
    assert_usage_error(&["--fleet-seed", "banana"], "--fleet-seed");
    assert_usage_error(&["--fleet-seed", "-1"], "--fleet-seed");
    assert_usage_error(&["--fleet-seed"], "--fleet-seed");
}

#[test]
fn malformed_ec_geometries_are_usage_errors() {
    assert_usage_error(&["--ec", "0+2"], "--ec");
    assert_usage_error(&["--ec", "4+0"], "--ec");
    assert_usage_error(&["--ec", "200+100"], "--ec");
    assert_usage_error(&["--ec", "4+2,0+1"], "--ec");
    assert_usage_error(&["--ec", "4-2"], "--ec");
    assert_usage_error(&["--ec", "banana"], "--ec");
    assert_usage_error(&["--ec", "4+two"], "--ec");
    assert_usage_error(&["--ec", ""], "--ec");
    assert_usage_error(&["--ec"], "--ec");
}

#[test]
fn malformed_death_rates_are_usage_errors() {
    assert_usage_error(&["--death-rates", "nan"], "--death-rates");
    assert_usage_error(&["--death-rates", "4,-1"], "--death-rates");
    assert_usage_error(&["--death-rates", "0,banana"], "--death-rates");
    assert_usage_error(&["--death-rates", "inf"], "--death-rates");
    assert_usage_error(&["--death-rates", ""], "--death-rates");
    assert_usage_error(&["--death-rates"], "--death-rates");
}

#[test]
fn malformed_rebuild_rate_is_a_usage_error() {
    assert_usage_error(&["--rebuild-rate", "0"], "--rebuild-rate");
    assert_usage_error(&["--rebuild-rate", "-128"], "--rebuild-rate");
    assert_usage_error(&["--rebuild-rate", "nan"], "--rebuild-rate");
    assert_usage_error(&["--rebuild-rate", "inf"], "--rebuild-rate");
    assert_usage_error(&["--rebuild-rate", "fast"], "--rebuild-rate");
    assert_usage_error(&["--rebuild-rate"], "--rebuild-rate");
}

#[test]
fn malformed_durability_seed_is_a_usage_error() {
    assert_usage_error(&["--durability-seed", "banana"], "--durability-seed");
    assert_usage_error(&["--durability-seed", "-1"], "--durability-seed");
    assert_usage_error(&["--durability-seed"], "--durability-seed");
}

#[test]
fn malformed_fleet_retries_is_a_usage_error() {
    assert_usage_error(&["--fleet-retries", "banana"], "--fleet-retries");
    assert_usage_error(&["--fleet-retries", "-1"], "--fleet-retries");
    assert_usage_error(&["--fleet-retries"], "--fleet-retries");
}

#[test]
fn malformed_checkpoint_flags_are_usage_errors() {
    assert_usage_error(&["--checkpoint-out"], "--checkpoint-out");
    assert_usage_error(&["--checkpoint-every", "0"], "--checkpoint-every");
    assert_usage_error(&["--checkpoint-every", "-3"], "--checkpoint-every");
    assert_usage_error(&["--checkpoint-every", "often"], "--checkpoint-every");
    assert_usage_error(&["--checkpoint-every"], "--checkpoint-every");
    assert_usage_error(&["--resume-from"], "--resume-from");
}

#[test]
fn malformed_chaos_knobs_are_usage_errors() {
    assert_usage_error(&["--chaos-panic-rate", "nan"], "--chaos-panic-rate");
    assert_usage_error(&["--chaos-panic-rate", "NaN"], "--chaos-panic-rate");
    assert_usage_error(&["--chaos-panic-rate", "-0.5"], "--chaos-panic-rate");
    assert_usage_error(&["--chaos-panic-rate", "1.5"], "--chaos-panic-rate");
    assert_usage_error(&["--chaos-panic-rate", "inf"], "--chaos-panic-rate");
    assert_usage_error(&["--chaos-panic-rate", "often"], "--chaos-panic-rate");
    assert_usage_error(&["--chaos-panic-rate"], "--chaos-panic-rate");
    assert_usage_error(&["--chaos-fail-point", "0"], "--chaos-fail-point");
    assert_usage_error(&["--chaos-fail-point", "-2"], "--chaos-fail-point");
    assert_usage_error(&["--chaos-fail-point", "later"], "--chaos-fail-point");
    assert_usage_error(&["--chaos-fail-point"], "--chaos-fail-point");
}

#[test]
fn chaos_knobs_stay_hidden_but_checkpoint_flags_are_documented() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in ["--checkpoint-out", "--checkpoint-every", "--resume-from"] {
        assert!(stderr.contains(needle), "usage omits {needle}:\n{stderr}");
    }
    assert!(
        !stderr.contains("--chaos"),
        "chaos knobs are self-test plumbing and must stay out of the usage \
         string:\n{stderr}"
    );
}

#[test]
fn unusable_resume_checkpoint_is_a_config_error() {
    // A nonexistent checkpoint exits 3 (config) with a typed reason, not
    // 2 (usage: the flag itself was well-formed) and not a panic.
    let out = repro(&[
        "--scale",
        "0.02",
        "--resume-from",
        "/nonexistent/fleet.ckpt",
        "fleet",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(3),
        "bad --resume-from should exit 3; stderr:\n{stderr}"
    );
    assert!(stderr.contains("checkpoint"), "untyped error:\n{stderr}");
    assert!(!stderr.contains("panicked"), "panicked:\n{stderr}");
}

#[test]
fn unwritable_checkpoint_out_is_a_config_error() {
    let out = repro(&[
        "--scale",
        "0.02",
        "--checkpoint-out",
        "/nonexistent-dir/fleet.ckpt",
        "fleet",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(3),
        "unwritable --checkpoint-out should fail fast with exit 3; stderr:\n{stderr}"
    );
    assert!(stderr.contains("checkpoint"), "untyped error:\n{stderr}");
}

#[test]
fn usage_lists_the_durability_target_and_flags() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in ["durability", "--ec", "--death-rates", "--rebuild-rate"] {
        assert!(stderr.contains(needle), "usage omits {needle}:\n{stderr}");
    }
}
