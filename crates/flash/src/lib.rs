//! Flash storage management for the `mobistore` reproduction of *Storage
//! Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! The byte-accessible flash memory card (Intel Series 2) erases in large
//! segments, so a file system using it must remap blocks, clean segments by
//! copying live data, and spread erasures to respect the card's endurance
//! limit (§2). [`store::FlashCardStore`] implements that machinery — the
//! analogue of the Microsoft Flash File System layer the paper simulates —
//! with the cleaning-policy and scheduling knobs §4.2 describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod store;

pub use store::{
    CleanerMode, FlashCardConfig, FlashCardCounters, FlashCardStore, VictimPolicy, WearStats,
};
