//! Workload generators for the `mobistore` reproduction of *Storage
//! Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! The paper's four workloads (§4.1):
//!
//! * [`synth`] — the synthetic hot-and-cold workload, reimplemented exactly
//!   from the published recipe;
//! * [`tracegen`] — statistical generators for the proprietary `mac`,
//!   `dos`, and `hp` traces, calibrated to every moment Table 3 publishes
//!   (see `DESIGN.md` for the substitution argument).
//!
//! [`Workload`] is the convenience enum the experiment harness iterates
//! over, and [`cache`] memoizes generated traces process-wide so the ~17
//! experiment runners share one generation of each trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod synth;
pub mod tracegen;

pub use synth::SynthSpec;
pub use tracegen::TraceSpec;

use mobistore_trace::record::Trace;

/// The four workloads of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// PowerBook file-level trace (Table 3).
    Mac,
    /// IBM PC / Windows 3.1 file-level trace (Table 3).
    Dos,
    /// HP-UX disk-level trace (Table 3); simulate with no DRAM cache.
    Hp,
    /// The synthetic hot-and-cold stress test.
    Synth,
}

impl Workload {
    /// All four workloads, in the paper's order.
    pub const ALL: [Workload; 4] = [Workload::Mac, Workload::Dos, Workload::Hp, Workload::Synth];

    /// The three trace-derived workloads of Tables 3 and 4.
    pub const TABLE4: [Workload; 3] = [Workload::Mac, Workload::Dos, Workload::Hp];

    /// The workload's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Mac => "mac",
            Workload::Dos => "dos",
            Workload::Hp => "hp",
            Workload::Synth => "synth",
        }
    }

    /// True if simulations of this workload must run without a DRAM cache
    /// (§4.1: the `hp` trace is below the buffer cache).
    pub fn below_buffer_cache(self) -> bool {
        self == Workload::Hp
    }

    /// Generates the workload at full published length.
    pub fn generate(self, seed: u64) -> Trace {
        self.generate_scaled(1.0, seed)
    }

    /// Generates the workload scaled to `fraction` of its full duration
    /// (or operation count, for `synth`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn generate_scaled(self, fraction: f64, seed: u64) -> Trace {
        assert!(fraction > 0.0 && fraction <= 1.0, "bad scale {fraction}");
        match self {
            Workload::Mac => tracegen::generate(&TraceSpec::mac().scaled(fraction), seed),
            Workload::Dos => tracegen::generate(&TraceSpec::dos().scaled(fraction), seed),
            Workload::Hp => tracegen::generate(&TraceSpec::hp().scaled(fraction), seed),
            Workload::Synth => {
                let ops = ((30_000.0 * fraction) as usize).max(10);
                synth::generate(&SynthSpec::paper(ops), seed)
            }
        }
    }

    /// Generates the workload at an arbitrary per-device demand level
    /// (for fleet shards, whose populations imply tiny per-device trace
    /// fractions).
    ///
    /// `demand` is clamped into `[1e-4, 1.0]`. The trace generators are
    /// statistical, so a very small fraction of a bursty trace can land
    /// entirely inside an idle gap and come out empty; in that case the
    /// fraction deterministically doubles (same seed) until the trace is
    /// non-empty, which is guaranteed by `fraction = 1`.
    pub fn generate_demand(self, demand: f64, seed: u64) -> Trace {
        let mut fraction = demand.clamp(1e-4, 1.0);
        loop {
            let trace = self.generate_scaled(fraction, seed);
            if !trace.is_empty() || fraction >= 1.0 {
                return trace;
            }
            fraction = (fraction * 2.0).min(1.0);
        }
    }
}
