//! Structured sim-time event tracing.
//!
//! Every interesting transition in the simulated storage stack — op
//! issue/completion, cache hits and misses, disk spin state changes, flash
//! cleaning passes, injected faults, power failures — can be reported to
//! an [`Observer`] as a sim-time-stamped [`Event`]. The device and
//! simulator layers take the observer as a *generic* parameter, so the
//! default [`NoopObserver`] monomorphises to nothing: no allocation, no
//! branch, no change to any golden snapshot.
//!
//! Determinism rules: events carry **sim time only** (integer
//! nanoseconds), never wall-clock, and are emitted in the order the
//! simulator processes them — a single-threaded order per simulation run —
//! so any serialized event stream is byte-identical at any `--jobs` count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};

/// The class of a trace operation, as seen by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A block read.
    Read,
    /// A block write.
    Write,
    /// A trim/delete hint.
    Trim,
}

impl OpKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Trim => "trim",
        }
    }
}

/// An injected-fault classification carried by [`Event::FaultInjected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A flash write needed `retries` extra program attempts.
    WriteRetry {
        /// Number of extra attempts drawn from the fault plan.
        retries: u32,
    },
    /// A segment erase needed `retries` extra attempts.
    EraseRetry {
        /// Number of extra attempts drawn from the fault plan.
        retries: u32,
    },
    /// A segment failed permanently and was retired.
    SegmentRetired {
        /// Index of the retired segment.
        segment: u32,
    },
}

/// One structured, sim-time-stamped event.
///
/// All payload fields are integers (times in nanoseconds via
/// [`SimTime`]/[`SimDuration`]), so serialization is trivially
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A trace operation entered the simulator.
    OpIssued {
        /// Issue time.
        t: SimTime,
        /// Operation class.
        kind: OpKind,
        /// First logical block touched.
        lbn: u64,
        /// Number of blocks touched.
        blocks: u32,
    },
    /// A trace operation finished, with its latency breakdown.
    OpCompleted {
        /// Completion time (issue time + response).
        t: SimTime,
        /// Operation class.
        kind: OpKind,
        /// First logical block touched.
        lbn: u64,
        /// Number of blocks touched.
        blocks: u32,
        /// Time spent waiting before the device started serving
        /// (queueing, spin-up, cleaning stalls).
        queue: SimDuration,
        /// Time the device spent actively serving.
        service: SimDuration,
        /// End-to-end response time as recorded in Table 4.
        response: SimDuration,
    },
    /// The DRAM buffer cache served a read probe.
    CacheRead {
        /// Probe time.
        t: SimTime,
        /// Blocks found in the cache.
        hits: u32,
        /// Blocks that must go to the backend.
        misses: u32,
    },
    /// The DRAM buffer cache absorbed a write.
    CacheWrite {
        /// Write time.
        t: SimTime,
        /// Blocks written into the cache.
        blocks: u32,
        /// Dirty blocks evicted to make room.
        dirty_evictions: u32,
    },
    /// A read hit the SRAM write buffer before reaching the device.
    SramReadHit {
        /// Hit time.
        t: SimTime,
        /// Blocks served.
        blocks: u32,
    },
    /// The SRAM write buffer absorbed dirty blocks.
    SramAbsorb {
        /// Absorb time.
        t: SimTime,
        /// Blocks absorbed.
        blocks: u32,
    },
    /// The SRAM write buffer drained to the backend.
    SramFlush {
        /// Flush time.
        t: SimTime,
        /// Blocks flushed.
        blocks: u32,
    },
    /// The magnetic disk began spinning up.
    DiskSpinUp {
        /// Spin-up start time.
        t: SimTime,
    },
    /// The magnetic disk began spinning down after its idle timeout.
    DiskSpinDown {
        /// Spin-down start time.
        t: SimTime,
    },
    /// The flash card started cleaning a victim segment.
    FlashCleanStart {
        /// Cleaning start time.
        t: SimTime,
        /// Victim segment index.
        victim: u32,
        /// Live blocks copied out of the victim.
        live_copied: u32,
    },
    /// The flash card finished (or abandoned) a cleaning pass.
    FlashCleanEnd {
        /// Completion time.
        t: SimTime,
        /// Victim segment index.
        victim: u32,
        /// Whether the segment was retired instead of erased.
        retired: bool,
    },
    /// The flash disk pre-erased garbage in the background.
    FlashPreErase {
        /// Erase start time.
        t: SimTime,
        /// Bytes erased.
        bytes: u64,
    },
    /// The fault plan injected a fault.
    FaultInjected {
        /// Injection time.
        t: SimTime,
        /// What kind of fault.
        kind: FaultKind,
    },
    /// Power was lost; volatile state is gone.
    PowerFail {
        /// Failure time.
        t: SimTime,
        /// Dirty blocks lost from volatile caches.
        lost_dirty_blocks: u64,
    },
    /// Post-power-failure recovery completed.
    RecoveryEnd {
        /// Time recovery finished.
        t: SimTime,
        /// How long recovery took.
        duration: SimDuration,
    },
    /// The flash card exhausted its cleanable capacity and entered
    /// read-only end-of-life mode; further writes fail with a typed error.
    FlashEndOfLife {
        /// Transition time.
        t: SimTime,
        /// Live blocks at the transition.
        live: u64,
        /// Usable (non-retired) block capacity at the transition.
        usable: u64,
        /// Retired (bad-segment) blocks at the transition.
        retired: u64,
    },
    /// The ECC transparently corrected raw bit errors on a block read.
    EccCorrected {
        /// Read time.
        t: SimTime,
        /// The block whose data was corrected.
        lbn: u64,
        /// Raw bit errors corrected.
        errors: u32,
    },
    /// A marginal block read was recovered by bounded read-retry.
    ReadRetry {
        /// Read time.
        t: SimTime,
        /// The block that needed retries.
        lbn: u64,
        /// Retry attempts the recovery cost.
        attempts: u32,
    },
    /// A block read exceeded what ECC and read-retry can recover; its
    /// data is lost and the failure surfaces as a typed device error.
    UncorrectableRead {
        /// Read time.
        t: SimTime,
        /// The block whose data was lost.
        lbn: u64,
        /// Raw bit errors seen.
        errors: u32,
    },
    /// A degraded-but-correctable block was rewritten to fresh cells at
    /// the write frontier (relocate-and-remap).
    BlockRelocated {
        /// Relocation time.
        t: SimTime,
        /// The relocated block.
        lbn: u64,
        /// Segment the block was relocated out of.
        from_segment: u32,
        /// Raw bit errors that triggered the relocation.
        errors: u32,
    },
    /// The background scrubber finished a pass over one segment.
    ScrubPass {
        /// Pass completion time.
        t: SimTime,
        /// The segment scrubbed.
        segment: u32,
        /// Live blocks read by the pass.
        blocks: u32,
        /// Blocks whose errors the ECC corrected during the pass.
        corrected: u32,
        /// Blocks the pass relocated to fresh cells.
        relocated: u32,
    },
}

impl Event {
    /// Stable snake_case event name (used as the JSONL `event` field and
    /// as the counter key in a [`CounterRegistry`]).
    pub fn name(&self) -> &'static str {
        match self {
            Event::OpIssued { .. } => "op_issued",
            Event::OpCompleted { .. } => "op_completed",
            Event::CacheRead { .. } => "cache_read",
            Event::CacheWrite { .. } => "cache_write",
            Event::SramReadHit { .. } => "sram_read_hit",
            Event::SramAbsorb { .. } => "sram_absorb",
            Event::SramFlush { .. } => "sram_flush",
            Event::DiskSpinUp { .. } => "disk_spin_up",
            Event::DiskSpinDown { .. } => "disk_spin_down",
            Event::FlashCleanStart { .. } => "flash_clean_start",
            Event::FlashCleanEnd { .. } => "flash_clean_end",
            Event::FlashPreErase { .. } => "flash_pre_erase",
            Event::FaultInjected { .. } => "fault_injected",
            Event::PowerFail { .. } => "power_fail",
            Event::RecoveryEnd { .. } => "recovery_end",
            Event::FlashEndOfLife { .. } => "flash_end_of_life",
            Event::EccCorrected { .. } => "ecc_corrected",
            Event::ReadRetry { .. } => "read_retry",
            Event::UncorrectableRead { .. } => "uncorrectable_read",
            Event::BlockRelocated { .. } => "block_relocated",
            Event::ScrubPass { .. } => "scrub_pass",
        }
    }

    /// The event's sim-time stamp.
    pub fn time(&self) -> SimTime {
        match *self {
            Event::OpIssued { t, .. }
            | Event::OpCompleted { t, .. }
            | Event::CacheRead { t, .. }
            | Event::CacheWrite { t, .. }
            | Event::SramReadHit { t, .. }
            | Event::SramAbsorb { t, .. }
            | Event::SramFlush { t, .. }
            | Event::DiskSpinUp { t }
            | Event::DiskSpinDown { t }
            | Event::FlashCleanStart { t, .. }
            | Event::FlashCleanEnd { t, .. }
            | Event::FlashPreErase { t, .. }
            | Event::FaultInjected { t, .. }
            | Event::PowerFail { t, .. }
            | Event::RecoveryEnd { t, .. }
            | Event::FlashEndOfLife { t, .. }
            | Event::EccCorrected { t, .. }
            | Event::ReadRetry { t, .. }
            | Event::UncorrectableRead { t, .. }
            | Event::BlockRelocated { t, .. }
            | Event::ScrubPass { t, .. } => t,
        }
    }

    /// The event's JSON fields — `"t_ns":…,"event":"…"` plus the payload —
    /// without the enclosing braces, so callers can prepend context
    /// (workload, device) before wrapping. Integer and string values only.
    pub fn json_fields(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "\"t_ns\":{},\"event\":\"{}\"",
            self.time().as_nanos(),
            self.name()
        );
        match *self {
            Event::OpIssued {
                kind, lbn, blocks, ..
            } => {
                let _ = write!(
                    s,
                    ",\"op\":\"{}\",\"lbn\":{lbn},\"blocks\":{blocks}",
                    kind.name()
                );
            }
            Event::OpCompleted {
                kind,
                lbn,
                blocks,
                queue,
                service,
                response,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"op\":\"{}\",\"lbn\":{lbn},\"blocks\":{blocks},\"queue_ns\":{},\"service_ns\":{},\"response_ns\":{}",
                    kind.name(),
                    queue.as_nanos(),
                    service.as_nanos(),
                    response.as_nanos()
                );
            }
            Event::CacheRead { hits, misses, .. } => {
                let _ = write!(s, ",\"hits\":{hits},\"misses\":{misses}");
            }
            Event::CacheWrite {
                blocks,
                dirty_evictions,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"blocks\":{blocks},\"dirty_evictions\":{dirty_evictions}"
                );
            }
            Event::SramReadHit { blocks, .. }
            | Event::SramAbsorb { blocks, .. }
            | Event::SramFlush { blocks, .. } => {
                let _ = write!(s, ",\"blocks\":{blocks}");
            }
            Event::DiskSpinUp { .. } | Event::DiskSpinDown { .. } => {}
            Event::FlashCleanStart {
                victim,
                live_copied,
                ..
            } => {
                let _ = write!(s, ",\"victim\":{victim},\"live_copied\":{live_copied}");
            }
            Event::FlashCleanEnd {
                victim, retired, ..
            } => {
                let _ = write!(s, ",\"victim\":{victim},\"retired\":{retired}");
            }
            Event::FlashPreErase { bytes, .. } => {
                let _ = write!(s, ",\"bytes\":{bytes}");
            }
            Event::FaultInjected { kind, .. } => match kind {
                FaultKind::WriteRetry { retries } => {
                    let _ = write!(s, ",\"fault\":\"write_retry\",\"retries\":{retries}");
                }
                FaultKind::EraseRetry { retries } => {
                    let _ = write!(s, ",\"fault\":\"erase_retry\",\"retries\":{retries}");
                }
                FaultKind::SegmentRetired { segment } => {
                    let _ = write!(s, ",\"fault\":\"segment_retired\",\"segment\":{segment}");
                }
            },
            Event::PowerFail {
                lost_dirty_blocks, ..
            } => {
                let _ = write!(s, ",\"lost_dirty_blocks\":{lost_dirty_blocks}");
            }
            Event::RecoveryEnd { duration, .. } => {
                let _ = write!(s, ",\"duration_ns\":{}", duration.as_nanos());
            }
            Event::FlashEndOfLife {
                live,
                usable,
                retired,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"live\":{live},\"usable\":{usable},\"retired\":{retired}"
                );
            }
            Event::EccCorrected { lbn, errors, .. }
            | Event::UncorrectableRead { lbn, errors, .. } => {
                let _ = write!(s, ",\"lbn\":{lbn},\"errors\":{errors}");
            }
            Event::ReadRetry { lbn, attempts, .. } => {
                let _ = write!(s, ",\"lbn\":{lbn},\"attempts\":{attempts}");
            }
            Event::BlockRelocated {
                lbn,
                from_segment,
                errors,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"lbn\":{lbn},\"from_segment\":{from_segment},\"errors\":{errors}"
                );
            }
            Event::ScrubPass {
                segment,
                blocks,
                corrected,
                relocated,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"segment\":{segment},\"blocks\":{blocks},\"corrected\":{corrected},\"relocated\":{relocated}"
                );
            }
        }
        s
    }

    /// One complete JSON object for this event (no trailing newline).
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_fields())
    }
}

/// Receives structured simulation events.
///
/// Implementations must not assume events arrive in global sim-time order:
/// device-internal events (spin-downs, background cleaning) are emitted
/// when the simulator *settles* the device at its next access, which can
/// be after later-issued op events. Each event's own `t` is authoritative.
pub trait Observer {
    /// Called once per emitted event.
    fn record(&mut self, event: &Event);

    /// Called once per completed sim-time interval (see [`crate::span`]).
    /// Defaults to nothing, so event-only observers are unaffected and
    /// the [`NoopObserver`] path still monomorphises away.
    #[inline(always)]
    fn span(&mut self, _span: &crate::span::Span) {}
}

/// The default observer: does nothing, monomorphises to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline(always)]
    fn record(&mut self, _event: &Event) {}

    #[inline(always)]
    fn span(&mut self, _span: &crate::span::Span) {}
}

impl<O: Observer> Observer for &mut O {
    #[inline]
    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }

    #[inline]
    fn span(&mut self, span: &crate::span::Span) {
        (**self).span(span);
    }
}

/// A deterministic name → count map (BTreeMap, so iteration order is
/// sorted and stable across runs and job counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    counts: BTreeMap<&'static str, u64>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counts.entry(name).or_insert(0) += n;
    }

    /// Returns counter `name`, or 0 if never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// True if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(name, count)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Renders the registry as a JSON object (sorted keys).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{k}\":{v}");
        }
        s.push('}');
        s
    }
}

/// An observer that counts events by name in a [`CounterRegistry`].
#[derive(Debug, Clone, Default)]
pub struct CountingObserver {
    /// Event counts keyed by [`Event::name`].
    pub counts: CounterRegistry,
}

impl Observer for CountingObserver {
    fn record(&mut self, event: &Event) {
        self.counts.add(event.name(), 1);
    }
}

/// An observer that keeps every event (tests and small traces only — a
/// full-scale run emits millions of events).
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// Every event, in emission order.
    pub events: Vec<Event>,
}

impl Observer for RecordingObserver {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_is_integer_only() {
        let e = Event::OpCompleted {
            t: SimTime::from_nanos(1_500),
            kind: OpKind::Write,
            lbn: 42,
            blocks: 3,
            queue: SimDuration::from_nanos(100),
            service: SimDuration::from_nanos(400),
            response: SimDuration::from_nanos(500),
        };
        assert_eq!(
            e.to_json(),
            "{\"t_ns\":1500,\"event\":\"op_completed\",\"op\":\"write\",\"lbn\":42,\
             \"blocks\":3,\"queue_ns\":100,\"service_ns\":400,\"response_ns\":500}"
        );
    }

    #[test]
    fn counting_observer_counts_by_name() {
        let mut obs = CountingObserver::default();
        let t = SimTime::from_nanos(0);
        obs.record(&Event::DiskSpinUp { t });
        obs.record(&Event::DiskSpinUp { t });
        obs.record(&Event::PowerFail {
            t,
            lost_dirty_blocks: 2,
        });
        assert_eq!(obs.counts.get("disk_spin_up"), 2);
        assert_eq!(obs.counts.get("power_fail"), 1);
        assert_eq!(obs.counts.get("never"), 0);
        assert_eq!(
            obs.counts.to_json(),
            "{\"disk_spin_up\":2,\"power_fail\":1}"
        );
    }

    #[test]
    fn fault_event_names_payloads() {
        let t = SimTime::from_nanos(7);
        let e = Event::FaultInjected {
            t,
            kind: FaultKind::SegmentRetired { segment: 9 },
        };
        assert_eq!(e.name(), "fault_injected");
        assert!(e
            .to_json()
            .contains("\"fault\":\"segment_retired\",\"segment\":9"));
        assert_eq!(e.time(), t);
    }
}
