//! The flash disk emulator model (SunDisk SDP series).
//!
//! A flash disk presents a conventional block interface and erases a single
//! 512-byte sector at a time (§2), so — unlike the flash card — it never
//! copies live data and is immune to storage utilization (§5.2). Two erase
//! policies are modeled (§5.3):
//!
//! * **on-demand** (SDP5/SDP10): each write erases its sectors inline; the
//!   quoted write bandwidth already includes the erasure;
//! * **asynchronous** (SDP5A): the device pre-erases dirty sectors during
//!   idle periods, so writes that find pre-erased sectors proceed at the
//!   fast write rate (400 Kbytes/s) instead of the combined
//!   erase-plus-write rate (≈ 109 Kbytes/s). Background erasure is
//!   suspended while the device serves requests.

use mobistore_sim::energy::{EnergyMeter, Joules};
use mobistore_sim::integrity::{IntegrityConfig, IntegrityPlan, ReadVerdict};
use mobistore_sim::obs::{Event, NoopObserver, Observer};
use mobistore_sim::span::{Span, SpanKind};
use mobistore_sim::time::SimTime;

use crate::params::{ErasePolicy, FlashDiskParams};
use crate::{DeviceError, Dir, Service};

/// Counters the flash disk maintains alongside energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashDiskCounters {
    /// Completed accesses.
    pub ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes written into sectors the background cleaner had pre-erased.
    pub bytes_pre_erased: u64,
    /// Bytes whose erasure had to happen inline with the write.
    pub bytes_erased_on_demand: u64,
    /// Power failures survived.
    pub power_failures: u64,
    /// Total sim time spent re-scanning remap metadata after power loss.
    pub recovery_time: mobistore_sim::time::SimDuration,
    /// Read accesses whose raw bit errors the ECC corrected transparently.
    pub ecc_corrected: u64,
    /// Read-retry attempts spent recovering marginal reads.
    pub read_retries: u64,
    /// Read accesses lost to uncorrectable bit errors.
    pub uncorrectable_reads: u64,
}

impl FlashDiskCounters {
    /// Adds another flash disk's counters into this one (fleet
    /// aggregation: counts and durations are all additive).
    pub fn merge(&mut self, other: &FlashDiskCounters) {
        self.ops += other.ops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.bytes_pre_erased += other.bytes_pre_erased;
        self.bytes_erased_on_demand += other.bytes_erased_on_demand;
        self.power_failures += other.power_failures;
        self.recovery_time += other.recovery_time;
        self.ecc_corrected += other.ecc_corrected;
        self.read_retries += other.read_retries;
        self.uncorrectable_reads += other.uncorrectable_reads;
    }
}

/// A simulated flash disk emulator.
///
/// # Examples
///
/// ```
/// use mobistore_device::flashdisk::FlashDisk;
/// use mobistore_device::params::sdp5_datasheet;
/// use mobistore_device::Dir;
/// use mobistore_sim::time::SimTime;
///
/// let mut fd = FlashDisk::new(sdp5_datasheet());
/// let svc = fd.access(SimTime::ZERO, Dir::Read, 1024);
/// // 1.5 ms latency + 1 Kbyte at 600 Kbytes/s.
/// assert!((svc.end.as_secs_f64() - (0.0015 + 1.0 / 600.0)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct FlashDisk {
    params: FlashDiskParams,
    queueing: crate::QueueDiscipline,
    meter: EnergyMeter,
    counters: FlashDiskCounters,
    free_at: SimTime,
    /// Bytes of pre-erased sectors available for fast writes.
    erased_pool: u64,
    /// Bytes of dirty sectors awaiting background erasure.
    garbage: u64,
    /// Bit-error/ECC plan for reads; quiet by default.
    integrity: IntegrityPlan,
    /// Sim time of the last completed write; the retention term of the
    /// bit-error model is measured from here (the flash disk remaps
    /// internally, so per-block placement is not modeled).
    last_write: SimTime,
}

const CATEGORIES: &[&str] = &["active", "erase", "idle", "recover"];

/// Per-sector metadata the emulation layer re-reads after power loss (the
/// SDP controller's remap/erase-state headers).
const REMAP_HEADER_BYTES: u64 = 32;
/// The emulated sector size (§2: the SDP erases one 512-byte sector at a
/// time).
const SECTOR_BYTES: u64 = 512;

impl FlashDisk {
    /// Creates a flash disk; under [`ErasePolicy::Asynchronous`] the spare
    /// pool starts fully erased.
    pub fn new(params: FlashDiskParams) -> Self {
        let erased_pool = match params.erase_policy {
            ErasePolicy::OnDemand => 0,
            ErasePolicy::Asynchronous => params.spare_pool_bytes,
        };
        FlashDisk {
            params,
            queueing: crate::QueueDiscipline::Fifo,
            meter: EnergyMeter::new(CATEGORIES),
            counters: FlashDiskCounters::default(),
            free_at: SimTime::ZERO,
            erased_pool,
            garbage: 0,
            integrity: IntegrityPlan::quiet(),
            last_write: SimTime::ZERO,
        }
    }

    /// Installs a bit-error/ECC plan built from `integrity`. A zero-rate
    /// configuration (the default) draws nothing and leaves behaviour
    /// bit-identical to a device without a plan. The flash disk ignores
    /// `scrub_interval` — its controller hides sector management, so there
    /// is no segment walk to schedule — and uses the configuration's own
    /// `retry_backoff` (it has no fault plan to borrow one from).
    ///
    /// # Panics
    ///
    /// Panics if `integrity` has a negative or non-finite rate or
    /// disordered thresholds.
    pub fn with_integrity(mut self, integrity: IntegrityConfig) -> Self {
        self.integrity = IntegrityPlan::new(integrity);
        self
    }

    /// Sets the queue discipline (see [`crate::QueueDiscipline`]).
    pub fn with_queueing(mut self, discipline: crate::QueueDiscipline) -> Self {
        self.queueing = discipline;
        self
    }

    /// Returns the parameter set this device was built with.
    pub fn params(&self) -> &FlashDiskParams {
        &self.params
    }

    /// Returns the operation counters.
    pub fn counters(&self) -> FlashDiskCounters {
        self.counters
    }

    /// Returns total energy consumed so far.
    pub fn energy(&self) -> Joules {
        self.meter.total()
    }

    /// Returns the energy meter for per-state breakdowns.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Returns the bytes currently pre-erased and ready for fast writes.
    pub fn erased_pool(&self) -> u64 {
        self.erased_pool
    }

    /// Zeroes energy and counters while keeping device state; used at the
    /// warm-up boundary (§4.2).
    pub fn reset_metrics(&mut self) {
        self.meter = EnergyMeter::new(CATEGORIES);
        self.counters = FlashDiskCounters::default();
    }

    /// Serves one access issued at `now`.
    pub fn access(&mut self, now: SimTime, dir: Dir, bytes: u64) -> Service {
        self.access_obs(now, dir, bytes, &mut NoopObserver)
    }

    /// [`access`](Self::access), reporting background pre-erasure
    /// ([`Event::FlashPreErase`]) to an observer.
    pub fn access_obs<O: Observer>(
        &mut self,
        now: SimTime,
        dir: Dir,
        bytes: u64,
        obs: &mut O,
    ) -> Service {
        let start = self.settle(now, obs);
        let service = match dir {
            Dir::Read => self.params.read_bandwidth.transfer_time(bytes),
            Dir::Write => self.write_time(bytes),
        };
        let total = self.params.access_latency + service;
        let end = start + total;
        self.meter
            .charge_for("active", self.params.active_power, total);

        self.counters.ops += 1;
        let span_kind = match dir {
            Dir::Read => {
                self.counters.bytes_read += bytes;
                SpanKind::FlashRead { bytes }
            }
            Dir::Write => {
                self.counters.bytes_written += bytes;
                self.last_write = self.last_write.max(end);
                SpanKind::FlashProgram { bytes }
            }
        };
        obs.span(&Span::new(span_kind, start, end));
        // Open-loop accesses may overlap; keep the marker monotone.
        self.free_at = self.free_at.max(end);
        Service { start, end }
    }

    /// Fallible read: one bit-error classification per access (the flash
    /// disk's controller remaps sectors internally, so errors are modeled
    /// per request, with the retention clock reset by any write). Time and
    /// energy are always accounted; an error count past the ECC budget and
    /// the bounded read-retry yields [`DeviceError::Uncorrectable`] —
    /// reported, never silent.
    pub fn try_read(
        &mut self,
        now: SimTime,
        lbn: u64,
        bytes: u64,
    ) -> (Service, Result<(), DeviceError>) {
        self.try_read_obs(now, lbn, bytes, &mut NoopObserver)
    }

    /// [`try_read`](Self::try_read), reporting ECC corrections, retries,
    /// and uncorrectable losses to an observer.
    pub fn try_read_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbn: u64,
        bytes: u64,
        obs: &mut O,
    ) -> (Service, Result<(), DeviceError>) {
        let start = self.settle(now, obs);
        let transfer = self.params.read_bandwidth.transfer_time(bytes);
        let mut total = self.params.access_latency + transfer;
        let mut retry = None;
        let mut result = Ok(());
        let verdict = self
            .integrity
            .classify_read(0, start.saturating_since(self.last_write));
        match verdict {
            ReadVerdict::Clean => {}
            ReadVerdict::Corrected { errors } => {
                self.counters.ecc_corrected += 1;
                total += self.integrity.config().correction_penalty;
                obs.record(&Event::EccCorrected {
                    t: start,
                    lbn,
                    errors,
                });
            }
            ReadVerdict::Retried {
                errors: _,
                attempts,
            } => {
                self.counters.read_retries += u64::from(attempts);
                // Each retry backs off and re-runs the transfer.
                let extra =
                    (self.integrity.config().retry_backoff + transfer) * u64::from(attempts);
                total += extra;
                retry = Some((attempts, extra));
                obs.record(&Event::ReadRetry {
                    t: start,
                    lbn,
                    attempts,
                });
            }
            ReadVerdict::Uncorrectable { errors } => {
                self.counters.uncorrectable_reads += 1;
                obs.record(&Event::UncorrectableRead {
                    t: start,
                    lbn,
                    errors,
                });
                result = Err(DeviceError::Uncorrectable { lbn, errors });
            }
        }
        let end = start + total;
        self.meter
            .charge_for("active", self.params.active_power, total);
        obs.span(&Span::new(SpanKind::FlashRead { bytes }, start, end));
        if let Some((attempts, extra)) = retry {
            obs.span(&Span::new(
                SpanKind::EccRetry { lbn, attempts },
                end - extra,
                end,
            ));
        }
        self.counters.ops += 1;
        self.counters.bytes_read += bytes;
        self.free_at = self.free_at.max(end);
        (Service { start, end }, result)
    }

    /// Accounts for the trailing idle period (and any final background
    /// erasure) at the end of a simulation.
    pub fn finish(&mut self, end: SimTime) {
        self.finish_obs(end, &mut NoopObserver);
    }

    /// [`finish`](Self::finish), reporting trailing background erasure to
    /// an observer.
    pub fn finish_obs<O: Observer>(&mut self, end: SimTime, obs: &mut O) {
        let settled = self.settle(end, obs);
        debug_assert!(settled >= end || settled == end.max(settled));
    }

    /// Loses power at `now` and recovers.
    ///
    /// Flash is non-volatile, so the pre-erased pool and pending garbage
    /// survive; an in-flight access is abandoned. The emulation layer hides
    /// recovery inside the controller: on power-up it re-reads the remap
    /// and erase-state headers of its spare pool (one
    /// [`REMAP_HEADER_BYTES`] header per [`SECTOR_BYTES`] sector) before
    /// serving requests. Returns the recovery interval.
    pub fn power_fail(&mut self, now: SimTime) -> Service {
        self.power_fail_obs(now, &mut NoopObserver)
    }

    /// [`power_fail`](Self::power_fail), reporting background erasure cut
    /// short by the crash to an observer.
    pub fn power_fail_obs<O: Observer>(&mut self, now: SimTime, obs: &mut O) -> Service {
        if now < self.free_at {
            // The in-flight access dies with the power; the controller is
            // free the instant power returns.
            self.free_at = now;
        } else {
            let _ = self.settle(now, obs);
        }
        let sectors = self.params.spare_pool_bytes.div_ceil(SECTOR_BYTES);
        let scan = self
            .params
            .read_bandwidth
            .transfer_time(sectors * REMAP_HEADER_BYTES);
        let total = self.params.access_latency + scan;
        let end = now + total;
        self.meter
            .charge_for("recover", self.params.active_power, total);
        self.counters.power_failures += 1;
        self.counters.recovery_time += total;
        self.free_at = end;
        Service { start: now, end }
    }

    fn write_time(&mut self, bytes: u64) -> mobistore_sim::time::SimDuration {
        match self.params.erase_policy {
            ErasePolicy::OnDemand => self.params.write_bandwidth.transfer_time(bytes),
            ErasePolicy::Asynchronous => {
                let from_pool = bytes.min(self.erased_pool);
                let deficit = bytes - from_pool;
                self.erased_pool -= from_pool;
                // Overwritten sectors become garbage for the background
                // cleaner.
                self.garbage += bytes;
                self.counters.bytes_pre_erased += from_pool;
                self.counters.bytes_erased_on_demand += deficit;
                self.params
                    .pre_erased_write_bandwidth
                    .transfer_time(from_pool)
                    + self.params.erase_bandwidth.transfer_time(deficit)
                    + self
                        .params
                        .pre_erased_write_bandwidth
                        .transfer_time(deficit)
            }
        }
    }

    /// Settles the gap `[free_at, now]`: background erasure first (if the
    /// policy is asynchronous and there is garbage), idle power for the
    /// remainder. Returns when the device can start a new request.
    fn settle<O: Observer>(&mut self, now: SimTime, obs: &mut O) -> SimTime {
        if now <= self.free_at {
            // No idle gap to account; FIFO queues, open-loop serves at
            // arrival (the paper's independent-operation model).
            return match self.queueing {
                crate::QueueDiscipline::Fifo => self.free_at,
                crate::QueueDiscipline::OpenLoop => now,
            };
        }
        let gap = now - self.free_at;
        let mut idle = gap;
        if self.params.erase_policy == ErasePolicy::Asynchronous && self.garbage > 0 {
            let needed = self.params.erase_bandwidth.transfer_time(self.garbage);
            let spent = needed.min(gap);
            let erased = if spent == needed {
                self.garbage
            } else {
                self.params
                    .erase_bandwidth
                    .bytes_in(spent)
                    .min(self.garbage)
            };
            self.garbage -= erased;
            self.erased_pool += erased;
            if erased > 0 {
                obs.record(&Event::FlashPreErase {
                    t: self.free_at,
                    bytes: erased,
                });
                obs.span(&Span::new(
                    SpanKind::FlashErase { bytes: erased },
                    self.free_at,
                    self.free_at + spent,
                ));
            }
            self.meter
                .charge_for("erase", self.params.active_power, spent);
            idle = gap - spent;
        }
        self.meter.charge_for("idle", self.params.idle_power, idle);
        self.free_at = now;
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{sdp10_measured, sdp5_datasheet, sdp5a_datasheet};
    use mobistore_sim::time::SimDuration;
    use mobistore_sim::units::KIB;

    #[test]
    fn on_demand_write_uses_combined_rate() {
        let mut fd = FlashDisk::new(sdp5_datasheet());
        let svc = fd.access(SimTime::ZERO, Dir::Write, 109 * KIB);
        // ~1 s transfer at the combined 109.09 Kbytes/s rate + 1.5 ms.
        let secs = (svc.end - svc.start).as_secs_f64();
        assert!((secs - (0.0015 + 109.0 / 109.0909)).abs() < 1e-3, "{secs}");
    }

    #[test]
    fn sdp10_write_is_slow() {
        let mut fd = FlashDisk::new(sdp10_measured());
        let svc = fd.access(SimTime::ZERO, Dir::Write, 40 * KIB);
        assert!(((svc.end - svc.start).as_secs_f64() - 1.0015).abs() < 1e-6);
    }

    #[test]
    fn async_write_from_pool_is_fast() {
        let mut fd = FlashDisk::new(sdp5a_datasheet());
        let svc = fd.access(SimTime::ZERO, Dir::Write, 400 * KIB);
        // Entirely from the 512-Kbyte pre-erased pool: 1 s at 400 Kbytes/s.
        let secs = (svc.end - svc.start).as_secs_f64();
        assert!((secs - 1.0015).abs() < 1e-6, "{secs}");
        assert_eq!(fd.counters().bytes_pre_erased, 400 * KIB);
        assert_eq!(fd.erased_pool(), 112 * KIB);
    }

    #[test]
    fn async_write_beyond_pool_pays_inline_erase() {
        let mut fd = FlashDisk::new(sdp5a_datasheet());
        // Exhaust the 512-Kbyte pool, then write more with no idle time to
        // replenish it.
        let first = fd.access(SimTime::ZERO, Dir::Write, 512 * KIB);
        let svc = fd.access(first.end, Dir::Write, 150 * KIB);
        // Deficit of 150 Kbytes: erase 1 s at 150 + write at 400.
        let secs = (svc.end - svc.start).as_secs_f64();
        let expect = 0.0015 + 1.0 + 150.0 / 400.0;
        assert!((secs - expect).abs() < 1e-6, "{secs} vs {expect}");
        assert_eq!(fd.counters().bytes_erased_on_demand, 150 * KIB);
    }

    #[test]
    fn idle_gap_replenishes_pool() {
        let mut fd = FlashDisk::new(sdp5a_datasheet());
        let first = fd.access(SimTime::ZERO, Dir::Write, 512 * KIB);
        // 1 s of idle erases 150 Kbytes of the garbage.
        let later = first.end + SimDuration::from_secs(1);
        let svc = fd.access(later, Dir::Write, 150 * KIB);
        let secs = (svc.end - svc.start).as_secs_f64();
        let expect = 0.0015 + 150.0 / 400.0;
        assert!((secs - expect).abs() < 1e-4, "{secs} vs {expect}");
    }

    #[test]
    fn async_speedup_matches_section_5_3() {
        // The paper: decoupling erasure from writes improves write response
        // by ~2.5x. Compare transfer-dominated writes.
        let mut sync = FlashDisk::new(sdp5_datasheet());
        let mut asy = FlashDisk::new(sdp5a_datasheet());
        let t_sync = sync.access(SimTime::ZERO, Dir::Write, 32 * KIB);
        let t_asy = asy.access(SimTime::ZERO, Dir::Write, 32 * KIB);
        let ratio =
            (t_sync.end - t_sync.start).as_secs_f64() / (t_asy.end - t_asy.start).as_secs_f64();
        assert!((2.0..4.0).contains(&ratio), "speedup {ratio}");
    }

    #[test]
    fn energy_covers_idle_and_erase() {
        let mut fd = FlashDisk::new(sdp5a_datasheet());
        let first = fd.access(SimTime::ZERO, Dir::Write, 512 * KIB);
        fd.finish(first.end + SimDuration::from_secs(10));
        let m = fd.meter();
        assert!(m.category("active").get() > 0.0);
        assert!(
            m.category("erase").get() > 0.0,
            "background erase consumed energy"
        );
        assert!(m.category("idle").get() > 0.0);
        // 512 Kbytes of garbage erase in 512/150 = 3.41 s of the 10 s gap.
        let erase_j = m.category("erase").get();
        assert!((erase_j - 0.36 * (512.0 / 150.0)).abs() < 0.01, "{erase_j}");
    }

    #[test]
    fn energy_async_vs_sync_is_comparable() {
        // §5.3: asynchronous cleaning has minimal impact on energy.
        let mut sync = FlashDisk::new(sdp5_datasheet());
        let mut asy = FlashDisk::new(sdp5a_datasheet());
        let mut t1 = SimTime::ZERO;
        let mut t2 = SimTime::ZERO;
        for _ in 0..50 {
            t1 = sync
                .access(t1 + SimDuration::from_secs(1), Dir::Write, 16 * KIB)
                .end;
            t2 = asy
                .access(t2 + SimDuration::from_secs(1), Dir::Write, 16 * KIB)
                .end;
        }
        let end = t1.max(t2) + SimDuration::from_secs(1);
        sync.finish(end);
        asy.finish(end);
        let (e1, e2) = (sync.energy().get(), asy.energy().get());
        assert!((e1 - e2).abs() / e1 < 0.1, "sync {e1} vs async {e2}");
    }

    #[test]
    fn reads_queue_behind_busy_device() {
        let mut fd = FlashDisk::new(sdp5_datasheet());
        let w = fd.access(SimTime::ZERO, Dir::Write, 109 * KIB); // ~1 s
        let r = fd.access(SimTime::from_nanos(1_000_000), Dir::Read, KIB);
        assert_eq!(r.start, w.end);
    }

    #[test]
    fn power_fail_preserves_pool_and_charges_recovery() {
        let mut fd = FlashDisk::new(sdp5a_datasheet());
        let first = fd.access(SimTime::ZERO, Dir::Write, 100 * KIB);
        let pool = fd.erased_pool();
        let svc = fd.power_fail(first.end);
        assert!(svc.end > svc.start, "remap scan takes time");
        assert_eq!(fd.erased_pool(), pool, "flash state is non-volatile");
        assert_eq!(fd.counters().power_failures, 1);
        assert_eq!(fd.counters().recovery_time, svc.end - svc.start);
        assert!(fd.meter().category("recover").get() > 0.0);

        // A crash mid-access abandons the in-flight request: the device is
        // free for recovery at the crash instant, not at the access's
        // would-be completion.
        let w = fd.access(svc.end, Dir::Write, 100 * KIB);
        let mid = w.start + SimDuration::from_nanos((w.end - w.start).as_nanos() / 2);
        let svc2 = fd.power_fail(mid);
        assert_eq!(svc2.start, mid);
        let after = fd.access(svc2.end, Dir::Read, KIB);
        assert_eq!(after.start, svc2.end, "device serves as soon as recovered");
    }

    #[test]
    fn quiet_integrity_reads_are_byte_identical() {
        let mut plain = FlashDisk::new(sdp5_datasheet());
        let mut quiet = FlashDisk::new(sdp5_datasheet()).with_integrity(IntegrityConfig::none());
        for i in 0..20u64 {
            let t = SimTime::from_secs_f64(i as f64);
            let a = plain.access(t, Dir::Read, 4 * KIB);
            let (b, res) = quiet.try_read(t, i, 4 * KIB);
            assert_eq!(a, b);
            assert!(res.is_ok());
        }
        assert_eq!(plain.counters(), quiet.counters());
        assert_eq!(plain.energy().get(), quiet.energy().get());
    }

    #[test]
    fn retention_decay_makes_reads_uncorrectable() {
        let cfg = IntegrityConfig {
            retention_per_hour: 40.0,
            seed: 17,
            ..IntegrityConfig::none()
        };
        let mut fd = FlashDisk::new(sdp5_datasheet()).with_integrity(cfg);
        let w = fd.access(SimTime::ZERO, Dir::Write, 4 * KIB);
        // Immediately after the write λ ≈ 0: the read is clean.
        let (_, fresh) = fd.try_read(w.end, 0, 4 * KIB);
        assert!(fresh.is_ok());
        // An hour later λ = 40: far past the retry threshold.
        let (svc, stale) = fd.try_read(w.end + SimDuration::from_hours(1), 0, 4 * KIB);
        assert!(svc.end > svc.start, "time accounted even on failure");
        let err = stale.expect_err("an hour at 40 errors/hour is fatal");
        assert!(matches!(err, DeviceError::Uncorrectable { lbn: 0, .. }));
        assert_eq!(fd.counters().uncorrectable_reads, 1);
        // A fresh write resets the retention clock.
        let w2 = fd.access(svc.end, Dir::Write, 4 * KIB);
        let (_, res) = fd.try_read(w2.end, 0, 4 * KIB);
        assert!(res.is_ok());
    }

    #[test]
    fn corrections_cost_the_configured_penalty() {
        let cfg = IntegrityConfig {
            base_errors: 3.0,
            seed: 2,
            ..IntegrityConfig::none()
        };
        let mut clean = FlashDisk::new(sdp5_datasheet());
        let mut noisy = FlashDisk::new(sdp5_datasheet()).with_integrity(cfg);
        let ok = clean.access(SimTime::ZERO, Dir::Read, 4 * KIB);
        let (slow, res) = noisy.try_read(SimTime::ZERO, 0, 4 * KIB);
        assert!(res.is_ok());
        assert_eq!(noisy.counters().ecc_corrected, 1);
        assert_eq!(
            (slow.end - slow.start).saturating_sub(ok.end - ok.start),
            cfg.correction_penalty
        );
    }

    #[test]
    fn reset_metrics_preserves_pool_state() {
        let mut fd = FlashDisk::new(sdp5a_datasheet());
        let _ = fd.access(SimTime::ZERO, Dir::Write, 100 * KIB);
        let pool = fd.erased_pool();
        fd.reset_metrics();
        assert_eq!(fd.energy().get(), 0.0);
        assert_eq!(fd.erased_pool(), pool);
    }
}
