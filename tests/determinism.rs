//! Parallel execution must not change results: every experiment is a pure
//! function evaluated at independent points, and `parallel_map` preserves
//! input order, so a `--jobs 4` run must be indistinguishable from
//! `--jobs 1`.
//!
//! This is one `#[test]` on purpose: `exec::set_jobs` is process-global,
//! and the default test harness runs tests concurrently — splitting the
//! serial and parallel halves into separate tests would race on the
//! worker-count override.

use mobistore::experiments::integrity::{self, IntegrityOptions};
use mobistore::experiments::reliability::{self, ReliabilityOptions};
use mobistore::experiments::{figure4, table4, Scale};
use mobistore::sim::exec;
use mobistore::sim::time::SimDuration;

#[test]
fn parallel_runs_match_serial_runs() {
    let scale = Scale::quick();
    let fault_opts = ReliabilityOptions {
        rates: vec![0.0, 1e-3],
        power_interval: Some(SimDuration::from_secs(300)),
        fault_seed: 1994,
    };
    let ber_opts = IntegrityOptions {
        rates: vec![0.0, 4.0],
        scrub_interval: Some(SimDuration::from_secs(45)),
        ber_seed: 1994,
    };

    exec::set_jobs(1);
    let fig4_serial = figure4::run(scale);
    let tab4_serial = table4::run(scale);
    let rel_serial = reliability::run(scale, &fault_opts);
    let ber_serial = integrity::run(scale, &ber_opts);

    exec::set_jobs(4);
    let fig4_parallel = figure4::run(scale);
    let tab4_parallel = table4::run(scale);
    let rel_parallel = reliability::run(scale, &fault_opts);
    let ber_parallel = integrity::run(scale, &ber_opts);

    // Rendered output is the acceptance surface of `repro` — it must be
    // byte-identical.
    assert_eq!(fig4_serial.to_string(), fig4_parallel.to_string());
    assert_eq!(tab4_serial.to_string(), tab4_parallel.to_string());

    // And the underlying floats must match exactly, not just after
    // formatting truncates them.
    for (s, p) in fig4_serial.curves.iter().zip(&fig4_parallel.curves) {
        assert_eq!(s.label, p.label);
        for (a, b) in s.points.iter().zip(&p.points) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.energy.get(), b.energy.get(), "{}", s.label);
            assert_eq!(a.read_response_ms.mean, b.read_response_ms.mean);
        }
    }
    for (s, p) in tab4_serial.parts.iter().zip(&tab4_parallel.parts) {
        for (a, b) in s.rows.iter().zip(&p.rows) {
            assert_eq!(a.energy.get(), b.energy.get(), "{}", a.name);
            assert_eq!(a.write_response_ms.mean, b.write_response_ms.mean);
        }
    }

    // Fault-injected runs: the same seed and fault plan must inject the
    // same schedule at any worker count.
    assert_eq!(rel_serial.to_string(), rel_parallel.to_string());
    for (a, b) in rel_serial.card.iter().zip(&rel_parallel.card) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.rate, b.rate);
        assert_eq!(
            a.energy.get(),
            b.energy.get(),
            "{:?}@{}",
            a.workload,
            a.rate
        );
        assert_eq!(a.faults, b.faults, "{:?}@{}", a.workload, a.rate);
        assert_eq!(a.erasures, b.erasures);
    }
    for (a, b) in rel_serial.disk.iter().zip(&rel_parallel.disk) {
        assert_eq!(a.energy.get(), b.energy.get(), "{:?}", a.workload);
        assert_eq!(a.faults, b.faults, "{:?}", a.workload);
    }

    // Bit-error-injected runs: the same BER seed must produce the same
    // error schedule — and so the same corrected/uncorrectable counts and
    // the same energy — at any worker count.
    assert_eq!(ber_serial.to_string(), ber_parallel.to_string());
    for (a, b) in ber_serial.card.iter().zip(&ber_parallel.card) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.scrubbed, b.scrubbed);
        assert_eq!(
            a.metrics.energy.get(),
            b.metrics.energy.get(),
            "{}",
            a.metrics.name
        );
        assert_eq!(
            a.metrics.flash_card, b.metrics.flash_card,
            "{}",
            a.metrics.name
        );
    }
    for (a, b) in ber_serial.flash_disk.iter().zip(&ber_parallel.flash_disk) {
        assert_eq!(
            a.metrics.energy.get(),
            b.metrics.energy.get(),
            "{}",
            a.metrics.name
        );
        assert_eq!(
            a.metrics.flash_disk, b.metrics.flash_disk,
            "{}",
            a.metrics.name
        );
    }
}
