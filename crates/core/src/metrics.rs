//! Simulation results.
//!
//! [`Metrics`] carries everything the paper reports per configuration:
//! total energy (with a per-component breakdown), the Table 4 response-time
//! moments for reads and writes, cache/SRAM behaviour, and the flash-card
//! cleaning/endurance counters behind §5.2.

use mobistore_cache::dram::CacheStats;
use mobistore_cache::sram::SramStats;
use mobistore_device::array::ArrayCounters;
use mobistore_device::disk::DiskCounters;
use mobistore_device::flashdisk::FlashDiskCounters;
use mobistore_flash::store::{FlashCardCounters, WearStats};
use mobistore_sim::energy::Joules;
use mobistore_sim::hist::{Histogram, Percentiles};
use mobistore_sim::obs::CounterRegistry;
use mobistore_sim::stats::Summary;
use mobistore_sim::time::SimDuration;

/// Results of one simulation run (the measured, post-warm-up portion).
#[derive(Debug, Clone)]
pub struct Metrics {
    /// The configuration label (Table 4 row).
    pub name: String,
    /// Total energy over the measured portion, all components.
    pub energy: Joules,
    /// Energy per component: `("disk" | "flash" | "dram" | "sram", joules)`.
    pub energy_by_component: Vec<(&'static str, Joules)>,
    /// The backend device's per-state breakdown: `(state, energy, time in
    /// state)` — e.g. how long the disk spent spun down, or the card spent
    /// cleaning. Time covers only states charged as power × duration.
    pub backend_states: Vec<(&'static str, Joules, SimDuration)>,
    /// Read response times in milliseconds (mean/max/σ as in Table 4).
    pub read_response_ms: Summary,
    /// Write response times in milliseconds.
    pub write_response_ms: Summary,
    /// All operations' response times in milliseconds (Figure 4 reports
    /// "average over-all response time").
    pub overall_response_ms: Summary,
    /// Log-bucketed read response-time distribution (for percentiles).
    pub read_latency: Histogram,
    /// Log-bucketed write response-time distribution.
    pub write_latency: Histogram,
    /// Log-bucketed response-time distribution over all operations.
    pub overall_latency: Histogram,
    /// Retry-backoff episodes (write retries, erase-pulse retries, and
    /// ECC read retries on the flash card), in milliseconds per episode.
    pub backoff_ms: Summary,
    /// Log-bucketed distribution of those backoff episodes (for
    /// percentiles).
    pub backoff_latency: Histogram,
    /// Degraded-read episodes on an erasure-coded array (reads that had
    /// to decode around missing shards), in milliseconds per episode.
    pub degraded_read_ms: Summary,
    /// Log-bucketed distribution of those degraded reads (the durability
    /// sweep's p99 column).
    pub degraded_read_latency: Histogram,
    /// Wall-clock span of the measured portion.
    pub duration: SimDuration,
    /// DRAM cache behaviour, if a cache was configured.
    pub cache: Option<CacheStats>,
    /// SRAM write-buffer behaviour, if one was configured.
    pub sram: Option<SramStats>,
    /// Magnetic-disk counters, for disk backends.
    pub disk: Option<DiskCounters>,
    /// Flash-disk counters, for flash-disk backends.
    pub flash_disk: Option<FlashDiskCounters>,
    /// Flash-card counters, for flash-card backends.
    pub flash_card: Option<FlashCardCounters>,
    /// Erasure-coded array counters, for ec-array backends.
    pub array: Option<ArrayCounters>,
    /// Flash-card endurance statistics (§5.2), for flash-card backends.
    pub wear: Option<WearStats>,
    /// Dirty write-back blocks lost to injected power failures (volatile
    /// DRAM contents do not survive an outage).
    pub lost_dirty_blocks: u64,
    /// Write operations refused by a backend in read-only end-of-life
    /// mode (graceful degradation: the run drains instead of aborting).
    pub rejected_writes: u64,
    /// Blocks those refused writes covered.
    pub rejected_blocks: u64,
    /// Backend read accesses that came back uncorrectable (the integrity
    /// study's one permitted data-loss outcome: reported, never silent).
    pub uncorrectable_reads: u64,
}

/// Fault-injection and recovery totals, combined across backends so a
/// reliability report reads one shape whether the run was on the disk or
/// the flash card.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Transient write failures retried.
    pub write_retries: u64,
    /// Transient erase-pulse failures retried (flash card only).
    pub erase_retries: u64,
    /// Segments permanently retired into the bad-block map (flash card
    /// only).
    pub segments_retired: u64,
    /// Power failures survived.
    pub power_failures: u64,
    /// Total simulated time spent in recovery scans.
    pub recovery_time: SimDuration,
    /// Dirty write-back blocks lost to power failures.
    pub lost_dirty_blocks: u64,
    /// Writes refused after a flash card degraded to read-only at end of
    /// life.
    pub rejected_writes: u64,
    /// Permanent child-device deaths on an erasure-coded array.
    pub device_deaths: u64,
    /// Stripes an array reported unreconstructable (losses beyond `m`).
    pub data_loss_events: u64,
}

/// Merges a named accumulator list (`energy_by_component`-style): values
/// for names already present add in place, new names append in `other`'s
/// order.
fn merge_named<T: Copy, F: Fn(&mut T, T)>(
    into: &mut Vec<(&'static str, T)>,
    other: &[(&'static str, T)],
    add: F,
) {
    for &(name, value) in other {
        match into.iter_mut().find(|(n, _)| *n == name) {
            Some((_, existing)) => add(existing, value),
            None => into.push((name, value)),
        }
    }
}

/// Merges optional component counters: `Some + Some` merges field-wise,
/// `None + Some` adopts the other side's counters.
fn merge_opt<T: Copy, F: Fn(&mut T, &T)>(into: &mut Option<T>, other: &Option<T>, merge: F) {
    if let Some(o) = other {
        match into {
            Some(existing) => merge(existing, o),
            None => *into = Some(*o),
        }
    }
}

impl Metrics {
    /// An all-zero result carrying only a label: the identity for
    /// [`merge`](Self::merge), and the fold seed for fleet aggregation.
    pub fn empty(name: &str) -> Metrics {
        Metrics {
            name: name.to_string(),
            energy: Joules(0.0),
            energy_by_component: Vec::new(),
            backend_states: Vec::new(),
            read_response_ms: Summary::default(),
            write_response_ms: Summary::default(),
            overall_response_ms: Summary::default(),
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            overall_latency: Histogram::new(),
            backoff_ms: Summary::default(),
            backoff_latency: Histogram::new(),
            degraded_read_ms: Summary::default(),
            degraded_read_latency: Histogram::new(),
            duration: SimDuration::ZERO,
            cache: None,
            sram: None,
            disk: None,
            flash_disk: None,
            flash_card: None,
            array: None,
            wear: None,
            lost_dirty_blocks: 0,
            rejected_writes: 0,
            rejected_blocks: 0,
            uncorrectable_reads: 0,
        }
    }

    /// Folds another run's results into this one, as if both populations
    /// of operations had been observed by a single (fleet-wide) meter.
    ///
    /// Energy, histograms, response-time moments, and every component
    /// counter add; `duration` takes the maximum because merged runs
    /// model shards executing concurrently, not back to back. The `name`
    /// keeps `self`'s label. Merging [`Metrics::empty`] in either
    /// direction is an identity (up to the label).
    pub fn merge(&mut self, other: &Metrics) {
        self.energy += other.energy;
        merge_named(
            &mut self.energy_by_component,
            &other.energy_by_component,
            |a, b| *a += b,
        );
        for &(name, e, d) in &other.backend_states {
            match self.backend_states.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, se, sd)) => {
                    *se += e;
                    *sd += d;
                }
                None => self.backend_states.push((name, e, d)),
            }
        }
        self.read_response_ms.merge(&other.read_response_ms);
        self.write_response_ms.merge(&other.write_response_ms);
        self.overall_response_ms.merge(&other.overall_response_ms);
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.overall_latency.merge(&other.overall_latency);
        self.backoff_ms.merge(&other.backoff_ms);
        self.backoff_latency.merge(&other.backoff_latency);
        self.degraded_read_ms.merge(&other.degraded_read_ms);
        self.degraded_read_latency
            .merge(&other.degraded_read_latency);
        self.duration = self.duration.max(other.duration);
        merge_opt(&mut self.cache, &other.cache, CacheStats::merge);
        merge_opt(&mut self.sram, &other.sram, SramStats::merge);
        merge_opt(&mut self.disk, &other.disk, DiskCounters::merge);
        merge_opt(
            &mut self.flash_disk,
            &other.flash_disk,
            FlashDiskCounters::merge,
        );
        merge_opt(
            &mut self.flash_card,
            &other.flash_card,
            FlashCardCounters::merge,
        );
        merge_opt(&mut self.array, &other.array, ArrayCounters::merge);
        merge_opt(&mut self.wear, &other.wear, WearStats::merge);
        self.lost_dirty_blocks += other.lost_dirty_blocks;
        self.rejected_writes += other.rejected_writes;
        self.rejected_blocks += other.rejected_blocks;
        self.uncorrectable_reads += other.uncorrectable_reads;
    }

    /// Mean power draw over the measured portion, in watts.
    pub fn mean_power_w(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.energy.get() / secs
        }
    }

    /// Fraction of the measured span the backend spent in `state`
    /// (e.g. `"standby"` for the disk, `"clean"` for the card), or `None`
    /// if the state is unknown or the span is empty.
    pub fn state_fraction(&self, state: &str) -> Option<f64> {
        let span = self.duration.as_secs_f64();
        if span == 0.0 {
            return None;
        }
        self.backend_states
            .iter()
            .find(|(name, _, _)| *name == state)
            .map(|(_, _, d)| d.as_secs_f64() / span)
    }

    /// DRAM read hit ratio, if a cache was configured and saw reads.
    pub fn read_hit_ratio(&self) -> Option<f64> {
        let c = self.cache?;
        let total = c.read_hits + c.read_misses;
        if total == 0 {
            None
        } else {
            Some(c.read_hits as f64 / total as f64)
        }
    }

    /// Collects the fault/recovery counters from whichever backend ran.
    pub fn fault_totals(&self) -> FaultTotals {
        let mut t = FaultTotals {
            lost_dirty_blocks: self.lost_dirty_blocks,
            rejected_writes: self.rejected_writes,
            ..FaultTotals::default()
        };
        if let Some(d) = self.disk {
            t.power_failures += d.power_failures;
            t.recovery_time += d.recovery_time;
        }
        if let Some(f) = self.flash_disk {
            t.power_failures += f.power_failures;
            t.recovery_time += f.recovery_time;
        }
        if let Some(c) = self.flash_card {
            t.write_retries += c.write_retries;
            t.erase_retries += c.erase_retries;
            t.segments_retired += c.segments_retired;
            t.power_failures += c.power_failures;
            t.recovery_time += c.recovery_time;
        }
        if let Some(a) = self.array {
            t.power_failures += a.power_failures;
            t.recovery_time += a.recovery_time;
            t.device_deaths += a.device_deaths;
            t.data_loss_events += a.data_loss_events;
        }
        t
    }

    /// Read response-time percentiles (p50/p90/p99/p99.9, milliseconds)
    /// from the log-bucketed histogram.
    pub fn read_percentiles(&self) -> Percentiles {
        self.read_latency.percentiles_ms()
    }

    /// Write response-time percentiles in milliseconds.
    pub fn write_percentiles(&self) -> Percentiles {
        self.write_latency.percentiles_ms()
    }

    /// Percentiles over all operations' response times, in milliseconds.
    pub fn overall_percentiles(&self) -> Percentiles {
        self.overall_latency.percentiles_ms()
    }

    /// Flattens every component counter into one sorted name→value
    /// registry (`"dram.read_hits"`, `"card.erasures"`, …) for
    /// machine-readable export. Only the components that ran appear.
    pub fn counters(&self) -> CounterRegistry {
        let mut reg = CounterRegistry::new();
        if let Some(c) = self.cache {
            reg.add("dram.read_hits", c.read_hits);
            reg.add("dram.read_misses", c.read_misses);
            reg.add("dram.writes", c.writes);
            reg.add("dram.writebacks", c.writebacks);
            reg.add("dram.fill_rejects", c.fill_rejects);
        }
        if let Some(s) = self.sram {
            reg.add("sram.absorbed", s.absorbed);
            reg.add("sram.flushes", s.flushes);
            reg.add("sram.read_hits", s.read_hits);
        }
        if let Some(d) = self.disk {
            reg.add("disk.ops", d.ops);
            reg.add("disk.spin_ups", d.spin_ups);
            reg.add("disk.spin_downs", d.spin_downs);
            reg.add("disk.bytes_read", d.bytes_read);
            reg.add("disk.bytes_written", d.bytes_written);
            reg.add("disk.power_failures", d.power_failures);
            reg.add("disk.recovery_ns", d.recovery_time.as_nanos());
        }
        if let Some(f) = self.flash_disk {
            reg.add("flashdisk.ops", f.ops);
            reg.add("flashdisk.bytes_read", f.bytes_read);
            reg.add("flashdisk.bytes_written", f.bytes_written);
            reg.add("flashdisk.bytes_pre_erased", f.bytes_pre_erased);
            reg.add("flashdisk.bytes_erased_on_demand", f.bytes_erased_on_demand);
            reg.add("flashdisk.power_failures", f.power_failures);
            reg.add("flashdisk.recovery_ns", f.recovery_time.as_nanos());
            reg.add("flashdisk.ecc_corrected", f.ecc_corrected);
            reg.add("flashdisk.read_retries", f.read_retries);
            reg.add("flashdisk.uncorrectable_reads", f.uncorrectable_reads);
        }
        if let Some(c) = self.flash_card {
            reg.add("card.ops", c.ops);
            reg.add("card.bytes_read", c.bytes_read);
            reg.add("card.bytes_written", c.bytes_written);
            reg.add("card.erasures", c.erasures);
            reg.add("card.blocks_copied", c.blocks_copied);
            reg.add("card.cleaning_waits", c.cleaning_waits);
            reg.add("card.write_retries", c.write_retries);
            reg.add("card.erase_retries", c.erase_retries);
            reg.add("card.segments_retired", c.segments_retired);
            reg.add("card.power_failures", c.power_failures);
            reg.add("card.recovery_ns", c.recovery_time.as_nanos());
            reg.add("card.eol_write_rejections", c.eol_write_rejections);
            reg.add("card.ecc_corrected", c.ecc_corrected);
            reg.add("card.read_retries", c.read_retries);
            reg.add("card.uncorrectable_reads", c.uncorrectable_reads);
            reg.add("card.blocks_relocated", c.blocks_relocated);
            reg.add("card.scrub_passes", c.scrub_passes);
            reg.add("card.scrub_reads", c.scrub_reads);
            reg.add(
                "card.write_retry_backoff_ns",
                c.write_retry_backoff.as_nanos(),
            );
            reg.add(
                "card.erase_retry_backoff_ns",
                c.erase_retry_backoff.as_nanos(),
            );
        }
        if let Some(a) = self.array {
            reg.add("array.ops", a.ops);
            reg.add("array.bytes_read", a.bytes_read);
            reg.add("array.bytes_written", a.bytes_written);
            reg.add("array.degraded_reads", a.degraded_reads);
            reg.add("array.parity_updates", a.parity_updates);
            reg.add("array.rebuild_stripes", a.rebuild_stripes);
            reg.add("array.rebuilds_completed", a.rebuilds_completed);
            reg.add("array.rebuild_ns", a.rebuild_time.as_nanos());
            reg.add("array.device_deaths", a.device_deaths);
            reg.add("array.data_loss_events", a.data_loss_events);
            reg.add("array.vulnerability_ns", a.vulnerability.as_nanos());
            reg.add("array.power_failures", a.power_failures);
            reg.add("array.recovery_ns", a.recovery_time.as_nanos());
            reg.add("array.read_only_rejections", a.read_only_rejections);
        }
        reg.add("lost_dirty_blocks", self.lost_dirty_blocks);
        reg.add("rejected_writes", self.rejected_writes);
        reg.add("rejected_blocks", self.rejected_blocks);
        reg.add("uncorrectable_reads", self.uncorrectable_reads);
        reg
    }

    /// Renders the Table 4 row: energy, read mean/max/σ, write mean/max/σ.
    pub fn table4_row(&self) -> String {
        format!(
            "{:<34} {:>10.0} {:>9.2} {:>9.1} {:>7.1} {:>9.2} {:>9.1} {:>7.1}",
            self.name,
            self.energy.get(),
            self.read_response_ms.mean,
            self.read_response_ms.max,
            self.read_response_ms.std,
            self.write_response_ms.mean,
            self.write_response_ms.max,
            self.write_response_ms.std,
        )
    }

    /// The header matching [`table4_row`](Self::table4_row).
    pub fn table4_header() -> String {
        format!(
            "{:<34} {:>10} {:>9} {:>9} {:>7} {:>9} {:>9} {:>7}",
            "Device / parameters",
            "Energy(J)",
            "Rd mean",
            "Rd max",
            "Rd sd",
            "Wr mean",
            "Wr max",
            "Wr sd"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> Metrics {
        Metrics {
            name: "test".into(),
            energy: Joules(100.0),
            energy_by_component: vec![("disk", Joules(90.0)), ("dram", Joules(10.0))],
            backend_states: vec![("standby", Joules(5.0), SimDuration::from_secs(25))],
            read_response_ms: Summary {
                count: 10,
                mean: 2.0,
                max: 50.0,
                min: 0.1,
                std: 5.0,
                sum: 20.0,
            },
            write_response_ms: Summary {
                count: 5,
                mean: 1.0,
                max: 10.0,
                min: 0.1,
                std: 2.0,
                sum: 5.0,
            },
            overall_response_ms: Summary {
                count: 15,
                mean: 1.7,
                max: 50.0,
                min: 0.1,
                std: 4.0,
                sum: 25.0,
            },
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            overall_latency: Histogram::new(),
            backoff_ms: Summary::default(),
            backoff_latency: Histogram::new(),
            degraded_read_ms: Summary::default(),
            degraded_read_latency: Histogram::new(),
            duration: SimDuration::from_secs(50),
            cache: Some(CacheStats {
                read_hits: 80,
                read_misses: 20,
                writes: 10,
                writebacks: 0,
                fill_rejects: 0,
            }),
            sram: None,
            disk: None,
            flash_disk: None,
            flash_card: None,
            array: None,
            wear: None,
            lost_dirty_blocks: 0,
            rejected_writes: 0,
            rejected_blocks: 0,
            uncorrectable_reads: 0,
        }
    }

    #[test]
    fn merge_adds_counters_and_keeps_max_duration() {
        let mut a = dummy();
        let mut b = dummy();
        b.duration = SimDuration::from_secs(20);
        b.energy_by_component = vec![("dram", Joules(1.0)), ("sram", Joules(2.0))];
        b.backend_states = vec![
            ("standby", Joules(5.0), SimDuration::from_secs(25)),
            ("active", Joules(1.0), SimDuration::from_secs(1)),
        ];
        b.lost_dirty_blocks = 7;
        a.merge(&b);
        assert_eq!(a.energy, Joules(200.0));
        assert_eq!(a.duration, SimDuration::from_secs(50));
        assert_eq!(a.read_response_ms.count, 20);
        assert_eq!(a.lost_dirty_blocks, 7);
        assert_eq!(
            a.energy_by_component,
            vec![
                ("disk", Joules(90.0)),
                ("dram", Joules(11.0)),
                ("sram", Joules(2.0))
            ]
        );
        assert_eq!(a.backend_states.len(), 2);
        assert_eq!(a.backend_states[0].2, SimDuration::from_secs(50));
        let c = a.cache.unwrap();
        assert_eq!(c.read_hits, 160);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = dummy();
        a.merge(&Metrics::empty("zero"));
        let dbg_a = format!("{a:?}").replace("name: \"test\"", "");
        let mut e = Metrics::empty("zero");
        e.merge(&dummy());
        let dbg_e = format!("{e:?}").replace("name: \"zero\"", "");
        assert_eq!(dbg_a, dbg_e);
        assert_eq!(a.energy, dummy().energy);
        assert_eq!(a.read_response_ms, dummy().read_response_ms);
    }

    #[test]
    fn fault_totals_combine_backends() {
        let mut m = dummy();
        assert_eq!(m.fault_totals(), FaultTotals::default());
        m.lost_dirty_blocks = 3;
        m.disk = Some(DiskCounters {
            power_failures: 2,
            recovery_time: SimDuration::from_secs(1),
            ..DiskCounters::default()
        });
        let t = m.fault_totals();
        assert_eq!(t.power_failures, 2);
        assert_eq!(t.lost_dirty_blocks, 3);
        assert_eq!(t.recovery_time, SimDuration::from_secs(1));
    }

    #[test]
    fn fault_totals_include_array_losses() {
        let mut m = dummy();
        m.array = Some(ArrayCounters {
            device_deaths: 2,
            data_loss_events: 1,
            power_failures: 3,
            recovery_time: SimDuration::from_secs(2),
            ..ArrayCounters::default()
        });
        let t = m.fault_totals();
        assert_eq!(t.device_deaths, 2);
        assert_eq!(t.data_loss_events, 1);
        assert_eq!(t.power_failures, 3);
        assert_eq!(t.recovery_time, SimDuration::from_secs(2));
        let reg = m.counters();
        assert_eq!(reg.get("array.device_deaths"), 2);
    }

    #[test]
    fn mean_power() {
        assert_eq!(dummy().mean_power_w(), 2.0);
        let mut m = dummy();
        m.duration = SimDuration::ZERO;
        assert_eq!(m.mean_power_w(), 0.0);
    }

    #[test]
    fn hit_ratio() {
        assert_eq!(dummy().read_hit_ratio(), Some(0.8));
        let mut m = dummy();
        m.cache = None;
        assert_eq!(m.read_hit_ratio(), None);
    }

    #[test]
    fn state_fraction() {
        let m = dummy();
        assert_eq!(m.state_fraction("standby"), Some(0.5));
        assert_eq!(m.state_fraction("warp"), None);
        let mut empty = dummy();
        empty.duration = SimDuration::ZERO;
        assert_eq!(empty.state_fraction("standby"), None);
    }

    #[test]
    fn row_renders_all_columns() {
        let row = dummy().table4_row();
        for needle in ["test", "100", "2.00", "50.0", "1.00", "10.0"] {
            assert!(row.contains(needle), "missing {needle} in {row}");
        }
        assert!(!Metrics::table4_header().is_empty());
    }
}
