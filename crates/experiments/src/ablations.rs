//! Ablations and extensions beyond the paper's headline experiments.
//!
//! * [`cleaning_policies`] — greedy vs FIFO vs cost-benefit victim
//!   selection (§2 mentions MFFS's greedy policy and eNVy's hybrid as the
//!   design space);
//! * [`write_back_cache`] — write-through (paper default) vs write-back
//!   (the §4.2 footnote's trade-off);
//! * [`spin_down_sweep`] — the disk spin-down threshold (§5.1 picks 5 s
//!   as "a good compromise", citing [5, 13]);
//! * [`flash_with_sram`] — an SRAM write buffer in front of the flash
//!   disk, the §7 suggestion ("adding SRAM to flash should dramatically
//!   improve performance").

use std::fmt;

use mobistore_cache::dram::WritePolicy;
use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::disk::{SeekModel, SpinDownPolicy};
use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet, sdp5a_datasheet};
use mobistore_flash::store::VictimPolicy;
use mobistore_sim::exec::parallel_map;
use mobistore_sim::time::SimDuration;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// A labelled set of metrics rows.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// What is being compared.
    pub title: &'static str,
    /// `(label, metrics)` rows.
    pub rows: Vec<(String, Metrics)>,
}

/// Compares flash-card cleaning policies on the `synth` workload (whose
/// hot-and-cold skew is what cost-benefit policies exploit).
pub fn cleaning_policies(scale: Scale) -> Ablation {
    let trace = shared_trace(Workload::Synth, scale);
    let variants = [
        ("greedy min-utilization", VictimPolicy::GreedyMinLive),
        ("FIFO", VictimPolicy::Fifo),
        ("cost-benefit (LFS/eNVy)", VictimPolicy::CostBenefit),
    ];
    let rows = parallel_map(&variants, |&(label, policy)| {
        let cfg = flash_card_config(intel_datasheet(), &trace, 0.90).with_victim_policy(policy);
        (label.to_owned(), simulate(&cfg, &trace))
    });
    Ablation {
        title: "Flash-card cleaning policy (synth, 90% utilized)",
        rows,
    }
}

/// Compares write-through vs write-back DRAM caching on the flash card
/// (§4.2's footnote: write-back "might avoid some erasures at the cost of
/// occasional data loss").
pub fn write_back_cache(scale: Scale) -> Ablation {
    let trace = shared_trace(Workload::Mac, scale);
    let variants = [
        ("write-through (paper)", WritePolicy::WriteThrough),
        ("write-back", WritePolicy::WriteBack),
    ];
    let rows = parallel_map(&variants, |&(label, policy)| {
        let cfg = flash_card_config(intel_datasheet(), &trace, 0.80).with_write_policy(policy);
        (label.to_owned(), simulate(&cfg, &trace))
    });
    Ablation {
        title: "DRAM write policy on the Intel card (mac)",
        rows,
    }
}

/// Sweeps the disk spin-down threshold on the `hp` trace (long idle gaps
/// make the trade-off visible).
pub fn spin_down_sweep(scale: Scale) -> Ablation {
    let trace = shared_trace(Workload::Hp, scale);
    let mut configs: Vec<(String, SystemConfig)> = [1u64, 5, 30, 120]
        .iter()
        .map(|&secs| {
            let cfg = SystemConfig::disk(cu140_datasheet())
                .with_dram(0)
                .with_spin_down(Some(SimDuration::from_secs(secs)));
            (format!("spin-down {secs}s"), cfg)
        })
        .collect();
    configs.push((
        "adaptive 1..60s".to_owned(),
        SystemConfig::disk(cu140_datasheet())
            .with_dram(0)
            .with_spin_down_policy(SpinDownPolicy::Adaptive {
                min: SimDuration::from_secs(1),
                max: SimDuration::from_secs(60),
                initial: SimDuration::from_secs(5),
            }),
    ));
    configs.push((
        "never spin down".to_owned(),
        SystemConfig::disk(cu140_datasheet())
            .with_dram(0)
            .with_spin_down(None),
    ));
    let rows = parallel_map(&configs, |(label, cfg)| {
        (label.clone(), simulate(cfg, &trace))
    });
    Ablation {
        title: "cu140 spin-down threshold (hp)",
        rows,
    }
}

/// Puts the §5.5 SRAM write buffer in front of the flash devices — the
/// extension §7 calls for ("adding SRAM to flash should dramatically
/// improve performance"). The SDP5A backend lets flushed bursts land in
/// pre-erased sectors with erasure hidden in idle time.
pub fn flash_with_sram(scale: Scale) -> Ablation {
    let trace = shared_trace(Workload::Mac, scale);
    let configs = [
        ("sdp5 (no SRAM)", SystemConfig::flash_disk(sdp5_datasheet())),
        (
            "sdp5a async erase, no SRAM",
            SystemConfig::flash_disk(sdp5a_datasheet()),
        ),
        (
            "sdp5a + 32KB SRAM",
            SystemConfig::flash_disk(sdp5a_datasheet()).with_sram(32 * 1024),
        ),
        (
            "Intel card + 32KB SRAM",
            flash_card_config(intel_datasheet(), &trace, 0.80).with_sram(32 * 1024),
        ),
    ];
    let rows = parallel_map(&configs, |(label, cfg)| {
        ((*label).to_owned(), simulate(cfg, &trace))
    });
    Ablation {
        title: "SRAM write buffer in front of flash (mac)",
        rows,
    }
}

/// Quantifies §5.1's seek-assumption divergence: the same trace through
/// the cu140 with the paper's same-file-average seeks vs distance-based
/// seeks over the real block addresses. §5.1: "Measured write performance
/// for the cu140 was about twice as slow in practice as in simulation; we
/// believe this is due to our optimistic assumption about avoiding
/// seeks."
pub fn seek_models(scale: Scale) -> Ablation {
    // The §5.1 setting: the synth workload, no DRAM cache, no SRAM, disk
    // spinning throughout.
    let trace = shared_trace(Workload::Synth, scale);
    // Distance model over the real 40-MB device geometry (512-byte
    // blocks), not just the trace's span.
    let capacity_blocks = (40 * 1024 * 1024 / trace.block_size).max(trace.blocks_spanned());
    let variants = [
        ("same-file average (paper)", SeekModel::SameFileAverage),
        ("always average (fragmented)", SeekModel::AlwaysAverage),
        (
            "distance-based (compact)",
            SeekModel::DistanceBased { capacity_blocks },
        ),
    ];
    let rows = parallel_map(&variants, |&(label, model)| {
        let cfg = SystemConfig::disk(cu140_datasheet())
            .with_dram(0)
            .with_sram(0)
            .with_spin_down(None)
            .with_seek_model(model);
        (label.to_owned(), simulate(&cfg, &trace))
    });
    Ablation {
        title: "cu140 seek model (synth, no cache, always spinning)",
        rows,
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: {}", self.title)?;
        writeln!(
            f,
            "{:<30} {:>11} {:>11} {:>11} {:>10}",
            "configuration", "energy(J)", "rd mean ms", "wr mean ms", "erasures"
        )?;
        for (label, m) in &self.rows {
            let erasures = m.flash_card.map(|c| c.erasures).unwrap_or(0);
            writeln!(
                f,
                "{:<30} {:>11.1} {:>11.3} {:>11.3} {:>10}",
                label,
                m.energy.get(),
                m.read_response_ms.mean,
                m.write_response_ms.mean,
                erasures,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_back_reduces_flash_writes() {
        let ab = write_back_cache(Scale::quick());
        let wt = &ab.rows[0].1;
        let wb = &ab.rows[1].1;
        // Write-back absorbs overwrites in DRAM: fewer bytes reach flash.
        assert!(
            wb.flash_card.unwrap().bytes_written < wt.flash_card.unwrap().bytes_written,
            "wb {} vs wt {}",
            wb.flash_card.unwrap().bytes_written,
            wt.flash_card.unwrap().bytes_written
        );
        // And writes are acknowledged at DRAM speed.
        assert!(wb.write_response_ms.mean < wt.write_response_ms.mean);
    }

    #[test]
    fn never_spinning_down_costs_energy() {
        let ab = spin_down_sweep(Scale::quick());
        let five = &ab.rows[1].1;
        let never = &ab.rows.last().unwrap().1;
        assert!(never.energy.get() > five.energy.get());
        // But it avoids spin-up latency entirely.
        assert!(never.read_response_ms.max <= five.read_response_ms.max);
    }

    #[test]
    fn adaptive_policy_is_competitive_with_the_5s_compromise() {
        let ab = spin_down_sweep(Scale::quick());
        let five = &ab.rows[1].1;
        let adaptive = ab
            .rows
            .iter()
            .find(|(label, _)| label.starts_with("adaptive"))
            .map(|(_, m)| m)
            .expect("adaptive row");
        // The adaptive threshold should land near the tuned fixed point on
        // both axes (within 2x), without knowing the workload in advance.
        assert!(adaptive.energy.get() < five.energy.get() * 2.0);
        assert!(adaptive.read_response_ms.mean < five.read_response_ms.mean * 4.0);
    }

    #[test]
    fn short_timeout_spins_up_more() {
        let ab = spin_down_sweep(Scale::quick());
        let one = ab.rows[0].1.disk.unwrap();
        let long = ab.rows[3].1.disk.unwrap();
        assert!(
            one.spin_ups >= long.spin_ups,
            "1s {} vs 120s {}",
            one.spin_ups,
            long.spin_ups
        );
    }

    #[test]
    fn sram_helps_flash_writes() {
        let ab = flash_with_sram(Scale::quick());
        let plain = &ab.rows[0].1;
        let buffered = &ab.rows[2].1;
        let card_buffered = &ab.rows[3].1;
        // SRAM absorbs nearly every flash write: a 20x-class improvement,
        // the "compete with newer magnetic disks" of §7.
        assert!(
            buffered.write_response_ms.mean * 10.0 < plain.write_response_ms.mean,
            "buffered {} vs plain {}",
            buffered.write_response_ms.mean,
            plain.write_response_ms.mean
        );
        assert!(
            card_buffered.write_response_ms.mean < 5.0,
            "{}",
            card_buffered.write_response_ms.mean
        );
    }

    #[test]
    fn seek_models_bracket_the_paper_assumption() {
        let ab = seek_models(Scale::quick());
        let paper = &ab.rows[0].1;
        let fragmented = &ab.rows[1].1;
        let compact = &ab.rows[2].1;
        // The §5.1 direction: on a fragmented volume (every access seeks),
        // writes slow down relative to the paper's optimistic assumption —
        // the "measured about twice as slow" divergence.
        assert!(
            fragmented.write_response_ms.mean > paper.write_response_ms.mean,
            "fragmented {} vs paper {}",
            fragmented.write_response_ms.mean,
            paper.write_response_ms.mean
        );
        // And with compact sequential layout, true distance-based seeks are
        // *cheaper* than charging a full average seek on every file switch:
        // the divergence comes from fragmentation, not from the averaging.
        assert!(compact.overall_response_ms.mean < fragmented.overall_response_ms.mean);
    }

    #[test]
    fn cleaning_policies_all_complete() {
        let ab = cleaning_policies(Scale::quick());
        assert_eq!(ab.rows.len(), 3);
        for (label, m) in &ab.rows {
            assert!(m.energy.get() > 0.0, "{label}");
            assert!(m.flash_card.is_some(), "{label}");
        }
        assert!(ab.to_string().contains("greedy"));
    }
}
