//! Table 3 — characteristics of the (generated) non-synthetic traces.
//!
//! The paper reports the statistics of the post-warm-up 90% of each trace;
//! this runner generates each workload, applies the same warm split, and
//! measures the same columns. `EXPERIMENTS.md` places these next to the
//! published values.

use std::fmt;

use mobistore_trace::stats::{split_warm, TraceStats};
use mobistore_workload::Workload;

use crate::{shared_trace, Scale};

/// Paper targets for one trace (the Table 3 column).
#[derive(Debug, Clone, Copy)]
pub struct PaperColumn {
    /// Trace name.
    pub name: &'static str,
    /// Distinct Kbytes accessed.
    pub distinct_kbytes: u64,
    /// Fraction of reads.
    pub fraction_reads: f64,
    /// Block size in Kbytes.
    pub block_kbytes: f64,
    /// Mean read size in blocks.
    pub mean_read_blocks: f64,
    /// Mean write size in blocks.
    pub mean_write_blocks: f64,
    /// Interarrival mean in seconds.
    pub interarrival_mean_s: f64,
}

/// The published Table 3 values.
pub const PAPER: [PaperColumn; 3] = [
    PaperColumn {
        name: "mac",
        distinct_kbytes: 22_000,
        fraction_reads: 0.50,
        block_kbytes: 1.0,
        mean_read_blocks: 1.3,
        mean_write_blocks: 1.2,
        interarrival_mean_s: 0.078,
    },
    PaperColumn {
        name: "dos",
        distinct_kbytes: 16_300,
        fraction_reads: 0.24,
        block_kbytes: 0.5,
        mean_read_blocks: 3.8,
        mean_write_blocks: 3.4,
        interarrival_mean_s: 0.528,
    },
    PaperColumn {
        name: "hp",
        distinct_kbytes: 32_000,
        fraction_reads: 0.38,
        block_kbytes: 1.0,
        mean_read_blocks: 4.3,
        mean_write_blocks: 6.2,
        interarrival_mean_s: 11.1,
    },
];

/// One measured trace column.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Trace name.
    pub name: &'static str,
    /// Measured statistics (of the post-warm portion, as in the paper).
    pub stats: TraceStats,
    /// The published targets.
    pub paper: PaperColumn,
}

/// The regenerated Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// One row per non-synthetic trace.
    pub rows: Vec<Table3Row>,
}

/// Generates the three traces and measures their characteristics.
pub fn run(scale: Scale) -> Table3 {
    let rows = Workload::TABLE4
        .iter()
        .zip(PAPER.iter())
        .map(|(&w, &paper)| {
            let trace = shared_trace(w, scale);
            let (_, measured) = split_warm(&trace, 10);
            Table3Row {
                name: w.name(),
                stats: TraceStats::measure(&measured),
                paper,
            }
        })
        .collect();
    Table3 { rows }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3: trace characteristics (generated vs paper)")?;
        writeln!(
            f,
            "{:<24} {:>14} {:>14} {:>14}",
            "Statistic", "mac (ours/paper)", "dos", "hp"
        )?;
        let cell = |ours: f64, paper: f64| format!("{ours:.3}/{paper:.3}");
        let row = |label: &str, get: &dyn Fn(&Table3Row) -> (f64, f64)| {
            let cells: Vec<String> = self
                .rows
                .iter()
                .map(|r| {
                    let (o, p) = get(r);
                    cell(o, p)
                })
                .collect();
            format!(
                "{:<24} {:>14} {:>14} {:>14}",
                label, cells[0], cells[1], cells[2]
            )
        };
        writeln!(
            f,
            "{}",
            row("distinct Kbytes", &|r| (
                r.stats.distinct_kbytes as f64,
                r.paper.distinct_kbytes as f64
            ))
        )?;
        writeln!(
            f,
            "{}",
            row("fraction reads", &|r| (
                r.stats.fraction_reads,
                r.paper.fraction_reads
            ))
        )?;
        writeln!(
            f,
            "{}",
            row("block size (KB)", &|r| (
                r.stats.block_size_kbytes,
                r.paper.block_kbytes
            ))
        )?;
        writeln!(
            f,
            "{}",
            row("mean read (blocks)", &|r| (
                r.stats.mean_read_blocks,
                r.paper.mean_read_blocks
            ))
        )?;
        writeln!(
            f,
            "{}",
            row("mean write (blocks)", &|r| (
                r.stats.mean_write_blocks,
                r.paper.mean_write_blocks
            ))
        )?;
        writeln!(
            f,
            "{}",
            row("interarrival mean (s)", &|r| (
                r.stats.interarrival.mean,
                r.paper.interarrival_mean_s
            ))
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_lands_near_paper() {
        let t = run(Scale::quick());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let rel = (row.stats.fraction_reads - row.paper.fraction_reads).abs()
                / row.paper.fraction_reads;
            assert!(rel < 0.25, "{}: read fraction off by {rel:.2}", row.name);
            assert_eq!(
                row.stats.block_size_kbytes, row.paper.block_kbytes,
                "{}",
                row.name
            );
        }
    }

    #[test]
    fn renders() {
        let text = run(Scale::quick()).to_string();
        assert!(text.contains("interarrival"));
        assert!(text.contains("mac"));
    }
}
