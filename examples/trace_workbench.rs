//! Trace workbench: generate, characterise, archive, and replay traces.
//!
//! Demonstrates the trace pipeline end to end: generate any of the four
//! §4.1 workloads, print its Table 3 characteristics, archive it in the
//! text format, read it back, and verify the replay produces bit-identical
//! simulation results.
//!
//! ```text
//! cargo run --release --example trace_workbench [mac|dos|hp|synth] [scale] [out.trace]
//! ```

use std::fs;

use mobistore::core::config::SystemConfig;
use mobistore::core::simulator::simulate;
use mobistore::device::params::sdp5_datasheet;
use mobistore::trace::io::{read_text, write_text};
use mobistore::trace::stats::{split_warm, TraceStats};
use mobistore::Workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = match args.next().as_deref() {
        Some("dos") => Workload::Dos,
        Some("hp") => Workload::Hp,
        Some("synth") => Workload::Synth,
        _ => Workload::Mac,
    };
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let out = args.next();

    let trace = workload.generate_scaled(scale, 2026);
    let (_, measured) = split_warm(&trace, 10);
    let stats = TraceStats::measure(&measured);

    println!(
        "Workload {} at {:.0}% scale:",
        workload.name(),
        scale * 100.0
    );
    println!("  operations          : {}", trace.len());
    println!("  duration            : {}", trace.duration());
    println!("  block size          : {} bytes", trace.block_size);
    println!("  distinct Kbytes     : {}", stats.distinct_kbytes);
    println!("  fraction of reads   : {:.2}", stats.fraction_reads);
    println!(
        "  mean read           : {:.2} blocks",
        stats.mean_read_blocks
    );
    println!(
        "  mean write          : {:.2} blocks",
        stats.mean_write_blocks
    );
    println!(
        "  interarrival        : mean {:.3}s, sigma {:.1}s, max {:.1}s",
        stats.interarrival.mean, stats.interarrival.std, stats.interarrival.max
    );

    // Archive and replay.
    let text = write_text(&trace);
    let restored = read_text(&text).expect("own output must parse");
    assert_eq!(restored.ops, trace.ops, "archive round-trip is lossless");

    let cfg = SystemConfig::flash_disk(sdp5_datasheet());
    let a = simulate(&cfg, &trace);
    let b = simulate(&cfg, &restored);
    assert_eq!(a.energy.get(), b.energy.get(), "replay is bit-identical");
    println!(
        "\nArchived {} bytes of trace text; replay through the sdp5 flash disk\n\
         reproduced the run bit-for-bit ({:.1} J, mean write {:.2} ms).",
        text.len(),
        a.energy.get(),
        a.write_response_ms.mean
    );

    if let Some(path) = out {
        fs::write(&path, &text).expect("write trace file");
        println!("Wrote {path}");
    }
}
