//! End-to-end integration tests spanning every crate: workload generation
//! → trace preprocessing → storage simulation → metrics.

use mobistore::cache::dram::WritePolicy;
use mobistore::core::config::SystemConfig;
use mobistore::core::simulator::{simulate, simulate_with, RunOptions};
use mobistore::device::params::{
    cu140_datasheet, intel_datasheet, sdp5_datasheet, sdp5a_datasheet,
};
use mobistore::device::QueueDiscipline;
use mobistore::experiments::flash_card_config;
use mobistore::trace::io::{read_text, write_text};
use mobistore::Workload;

const SCALE: f64 = 0.02;
const SEED: u64 = 99;

/// Every workload runs against every backend without panicking and with
/// physically sensible outputs.
#[test]
fn all_workloads_all_backends() {
    for workload in Workload::ALL {
        let trace = workload.generate_scaled(SCALE, SEED);
        let dram = if workload.below_buffer_cache() {
            0
        } else {
            2 * 1024 * 1024
        };
        let configs = [
            SystemConfig::disk(cu140_datasheet()).with_dram(dram),
            SystemConfig::flash_disk(sdp5_datasheet()).with_dram(dram),
            flash_card_config(intel_datasheet(), &trace, 0.80).with_dram(dram),
        ];
        for cfg in configs {
            let m = simulate(&cfg, &trace);
            assert!(m.energy.get() > 0.0, "{} on {}", cfg.name, workload.name());
            assert!(m.energy.get().is_finite());
            assert!(m.duration.as_secs_f64() > 0.0);
            assert!(m.read_response_ms.mean >= 0.0);
            assert!(m.write_response_ms.max >= m.write_response_ms.mean);
            assert!(m.overall_response_ms.count >= m.read_response_ms.count);
            // Mean power must be bounded by the sum of plausible device
            // draws (disk spin-up 3 W + DRAM + SRAM < 4 W).
            assert!(
                m.mean_power_w() < 4.0,
                "{}: {} W",
                cfg.name,
                m.mean_power_w()
            );
        }
    }
}

/// Identical inputs give bit-identical outputs across the whole pipeline.
#[test]
fn full_pipeline_is_deterministic() {
    for workload in [Workload::Mac, Workload::Synth] {
        let t1 = workload.generate_scaled(SCALE, SEED);
        let t2 = workload.generate_scaled(SCALE, SEED);
        assert_eq!(t1.ops, t2.ops, "{}", workload.name());

        let cfg = flash_card_config(intel_datasheet(), &t1, 0.85);
        let a = simulate(&cfg, &t1);
        let b = simulate(&cfg, &t2);
        assert_eq!(a.energy.get(), b.energy.get());
        assert_eq!(a.read_response_ms, b.read_response_ms);
        assert_eq!(a.write_response_ms, b.write_response_ms);
        assert_eq!(a.wear, b.wear);
    }
}

/// Different seeds give different traces (the generators actually use the
/// seed).
#[test]
fn seeds_matter() {
    let a = Workload::Dos.generate_scaled(SCALE, 1);
    let b = Workload::Dos.generate_scaled(SCALE, 2);
    assert_ne!(a.ops, b.ops);
}

/// A trace archived to text and re-read replays to identical metrics.
#[test]
fn archived_trace_replays_identically() {
    let trace = Workload::Dos.generate_scaled(SCALE, SEED);
    let restored = read_text(&write_text(&trace)).expect("round-trip");
    assert_eq!(restored.block_size, trace.block_size);
    assert_eq!(restored.ops, trace.ops);

    let cfg = SystemConfig::flash_disk(sdp5a_datasheet());
    let a = simulate(&cfg, &trace);
    let b = simulate(&cfg, &restored);
    assert_eq!(a.energy.get(), b.energy.get());
}

/// Warm-up exclusion: measuring 90% of the ops yields fewer recorded
/// responses than measuring all of them, and a warmer cache.
#[test]
fn warm_up_shrinks_sample_and_warms_cache() {
    let trace = Workload::Mac.generate_scaled(SCALE, SEED);
    let cfg = SystemConfig::disk(cu140_datasheet());
    let warm = simulate_with(
        &cfg,
        &trace,
        RunOptions {
            warm_percent: 10,
            ..Default::default()
        },
    );
    let cold = simulate_with(
        &cfg,
        &trace,
        RunOptions {
            warm_percent: 0,
            ..Default::default()
        },
    );
    assert!(warm.overall_response_ms.count < cold.overall_response_ms.count);
    let hit_warm = warm.read_hit_ratio().expect("cache");
    let hit_cold = cold.read_hit_ratio().expect("cache");
    assert!(
        hit_warm >= hit_cold * 0.95,
        "warm {hit_warm} vs cold {hit_cold}"
    );
}

/// FIFO queueing can only increase response times relative to the paper's
/// open-loop model (same trace, same devices).
#[test]
fn fifo_queueing_dominates_open_loop() {
    let trace = Workload::Dos.generate_scaled(SCALE, SEED);
    let open = simulate(&SystemConfig::flash_disk(sdp5_datasheet()), &trace);
    let fifo = simulate(
        &SystemConfig::flash_disk(sdp5_datasheet()).with_queueing(QueueDiscipline::Fifo),
        &trace,
    );
    assert!(fifo.write_response_ms.mean >= open.write_response_ms.mean);
    assert!(fifo.read_response_ms.mean >= open.read_response_ms.mean * 0.999);
}

/// Write-back caching reduces flash traffic on every workload that
/// overwrites data.
#[test]
fn write_back_reduces_device_writes_everywhere() {
    for workload in [Workload::Mac, Workload::Dos] {
        let trace = workload.generate_scaled(SCALE, SEED);
        let wt = simulate(&flash_card_config(intel_datasheet(), &trace, 0.8), &trace);
        let wb = simulate(
            &flash_card_config(intel_datasheet(), &trace, 0.8)
                .with_write_policy(WritePolicy::WriteBack),
            &trace,
        );
        let (wt_bytes, wb_bytes) = (
            wt.flash_card.unwrap().bytes_written,
            wb.flash_card.unwrap().bytes_written,
        );
        assert!(
            wb_bytes < wt_bytes,
            "{}: {} vs {}",
            workload.name(),
            wb_bytes,
            wt_bytes
        );
    }
}

/// Energy breakdowns sum to the total.
#[test]
fn energy_components_sum_to_total() {
    let trace = Workload::Mac.generate_scaled(SCALE, SEED);
    for cfg in [
        SystemConfig::disk(cu140_datasheet()),
        SystemConfig::flash_disk(sdp5_datasheet()),
        flash_card_config(intel_datasheet(), &trace, 0.8),
    ] {
        let m = simulate(&cfg, &trace);
        let sum: f64 = m.energy_by_component.iter().map(|(_, j)| j.get()).sum();
        assert!((sum - m.energy.get()).abs() < 1e-9, "{}", cfg.name);
        assert!(!m.energy_by_component.is_empty());
    }
}

/// The disk's per-state time attribution covers the measured span: the
/// five spin states tile the timeline (open-loop overlap and per-op
/// latency allow a small tolerance).
#[test]
fn disk_state_times_tile_the_timeline() {
    let trace = Workload::Hp.generate_scaled(SCALE, SEED);
    let m = simulate(&SystemConfig::disk(cu140_datasheet()).with_dram(0), &trace);
    let state_sum: f64 = m
        .backend_states
        .iter()
        .map(|(_, _, d)| d.as_secs_f64())
        .sum();
    let span = m.duration.as_secs_f64();
    let ratio = state_sum / span;
    assert!(
        (0.9..1.1).contains(&ratio),
        "states {state_sum}s vs span {span}s"
    );
    // And every state's energy is non-negative and finite.
    for (name, j, d) in &m.backend_states {
        assert!(j.get() >= 0.0 && j.get().is_finite(), "{name}");
        assert!(d.as_secs_f64() >= 0.0, "{name}");
    }
}

/// The flash card's wear accounting is consistent with its counters.
#[test]
fn wear_matches_erasure_counter() {
    let trace = Workload::Synth.generate_scaled(0.2, SEED);
    let cfg = flash_card_config(intel_datasheet(), &trace, 0.92);
    let m = simulate(&cfg, &trace);
    let wear = m.wear.expect("wear");
    let counters = m.flash_card.expect("counters");
    assert_eq!(wear.total, counters.erasures);
    assert!(f64::from(wear.max_erase) >= wear.mean_erase);
}
