//! Log-bucketed latency histograms.
//!
//! Table 4 reports only moments (mean/max/σ), which hide the latency
//! *tail* — exactly where spin-ups and cleaning stalls live. [`Histogram`]
//! records integer-nanosecond observations into log-linear buckets (32
//! sub-buckets per power of two, HDR-histogram style), so percentile
//! queries are exact to within one bucket width — a relative error of at
//! most 1/32 ≈ 3.1% — while the whole structure stays a few kilobytes and
//! every operation is integer-only and therefore deterministic.

use crate::stats::{OnlineStats, Summary};
use crate::time::SimDuration;

/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (values below this index map one-to-one).
const SUB: u64 = 1 << SUB_BITS;

/// A log-linear histogram over `u64` nanosecond values.
///
/// Values below 32 ns get exact unit-width buckets; every octave above is
/// split into 32 sub-buckets, bounding the relative width of any bucket by
/// 1/32. Percentiles use the nearest-rank definition and return the lower
/// bound of the bucket containing that rank, so the reported quantile is
/// never more than one bucket width below the exact sorted-vector
/// quantile.
///
/// # Examples
///
/// ```
/// use mobistore_sim::hist::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v * 1_000_000); // 1..=100 ms in nanoseconds
/// }
/// let p50 = h.percentile_nanos(0.50) as f64;
/// assert!((p50 - 50e6).abs() / 50e6 <= 1.0 / 32.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, indexed by [`bucket_index`]; grown on demand.
    counts: Vec<u64>,
    /// Total observations.
    count: u64,
}

/// Maps a value to its bucket index.
fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB {
        return nanos as usize;
    }
    let msb = 63 - u64::from(nanos.leading_zeros()); // >= SUB_BITS
    let octave = msb - u64::from(SUB_BITS);
    let sub = (nanos >> octave) - SUB;
    ((octave + 1) * SUB + sub) as usize
}

/// The `[low, high)` value range of bucket `index`. The topmost bucket's
/// upper bound saturates at `u64::MAX` (its true bound, 2^64, does not
/// fit), so it is one value narrower than nominal.
fn bucket_range(index: usize) -> (u64, u64) {
    let i = index as u64;
    if i < SUB {
        return (i, i + 1);
    }
    let octave = i / SUB - 1;
    let sub = i % SUB;
    let low = (SUB + sub) << octave;
    (low, low.saturating_add(1 << octave))
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `nanos`.
    pub fn record(&mut self, nanos: u64) {
        let i = bucket_index(nanos);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
    }

    /// Records `n` observations of `nanos` in one step. With `nanos` a
    /// bucket's lower bound (as yielded by [`Histogram::iter_nonzero`])
    /// this rebuilds that bucket exactly, which is what lets a
    /// checkpointed histogram round-trip bit-identically.
    pub fn record_n(&mut self, nanos: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = bucket_index(nanos);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += n;
        self.count += n;
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns true if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
    }

    /// The `[low, high)` bounds of the bucket that would hold `nanos`; the
    /// bucket width `high - low` bounds the percentile error for values in
    /// that range.
    pub fn bucket_bounds(nanos: u64) -> (u64, u64) {
        bucket_range(bucket_index(nanos))
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`), reported as the
    /// lower bound of the bucket containing that rank; 0 if empty.
    pub fn percentile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_range(i).0;
            }
        }
        // Unreachable while counts and count agree; be defensive.
        bucket_range(self.counts.len().saturating_sub(1)).0
    }

    /// The `q`-quantile in milliseconds.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.percentile_nanos(q) as f64 / 1e6
    }

    /// The standard percentile set (p50/p90/p99/p99.9) in milliseconds.
    pub fn percentiles_ms(&self) -> Percentiles {
        Percentiles {
            p50: self.percentile_ms(0.50),
            p90: self.percentile_ms(0.90),
            p99: self.percentile_ms(0.99),
            p999: self.percentile_ms(0.999),
        }
    }

    /// Iterates the non-empty buckets as `(low_nanos, high_nanos, count)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_range(i);
                (lo, hi, c)
            })
    }
}

/// The latency percentiles the observability report and the metrics export
/// carry, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// The median.
    pub p50: f64,
    /// The 90th percentile.
    pub p90: f64,
    /// The 99th percentile.
    pub p99: f64,
    /// The 99.9th percentile.
    pub p999: f64,
}

/// A latency recorder combining exact Welford moments (what Table 4
/// prints, byte-identical to the pre-histogram implementation) with a
/// [`Histogram`] for percentiles.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    stats: OnlineStats,
    hist: Histogram,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new()
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            stats: OnlineStats::new(),
            hist: Histogram::new(),
        }
    }

    /// Records one response time.
    pub fn record(&mut self, response: SimDuration) {
        self.stats.record(response.as_millis_f64());
        self.hist.record(response.as_nanos());
    }

    /// The frozen moment summary (Table 4's mean/max/σ columns).
    pub fn summary(&self) -> Summary {
        self.stats.summary()
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Consumes the recorder, returning the histogram.
    pub fn into_histogram(self) -> Histogram {
        self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_n_round_trips_nonzero_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 999, 1_000_000, 77_000_000_000] {
            for k in 0..=(v % 5 + 1) {
                h.record(v.wrapping_add(k));
            }
        }
        let mut rebuilt = Histogram::new();
        for (lo, _hi, count) in h.iter_nonzero() {
            rebuilt.record_n(lo, count);
        }
        assert_eq!(rebuilt, h, "lower-bound replay must rebuild exactly");
        rebuilt.record_n(5, 0);
        assert_eq!(rebuilt, h, "recording zero observations is a no-op");
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        // Unit-width buckets below 32: nearest-rank quantiles are exact.
        assert_eq!(h.percentile_nanos(0.5), 15); // rank 16 -> value 15
        assert_eq!(h.percentile_nanos(1.0), 31);
        assert_eq!(h.percentile_nanos(0.0), 0);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn known_exact_quantiles() {
        // 1..=1000 distinct values: nearest-rank pXX of the sorted vector
        // is value ceil(q*1000).
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000_000); // ms-scale nanos
        }
        for (q, exact) in [(0.50, 500u64), (0.90, 900), (0.99, 990), (0.999, 999)] {
            let exact_ns = exact * 1_000_000;
            let got = h.percentile_nanos(q);
            let (lo, hi) = Histogram::bucket_bounds(exact_ns);
            assert!(
                got >= lo && got < hi,
                "p{q}: got {got}, exact {exact_ns} in [{lo}, {hi})"
            );
            assert!(hi - lo <= exact_ns / 16, "bucket too wide at {exact_ns}");
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile_nanos(0.5), 0);
        assert_eq!(h.percentile_ms(0.99), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn bucket_bounds_contain_value_and_tile_the_line() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1_000, 1_000_000, u64::MAX / 2] {
            let (lo, hi) = Histogram::bucket_bounds(v);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi})");
            // Relative width bound: 1/32 of the lower bound (log region).
            if v >= 32 {
                assert!(hi - lo <= lo / 32 + 1, "bucket [{lo},{hi}) too wide");
            }
            // Adjacent buckets tile: hi is the low bound of the next bucket.
            let (lo2, _) = Histogram::bucket_bounds(hi);
            assert_eq!(lo2, hi, "gap after bucket [{lo},{hi})");
        }
    }

    #[test]
    fn topmost_bucket_saturates_instead_of_overflowing() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        let (lo, hi) = Histogram::bucket_bounds(u64::MAX);
        assert_eq!(hi, u64::MAX, "top bucket's bound must saturate");
        assert!(lo < hi);
        assert_eq!(h.percentile_nanos(1.0), lo);
    }

    #[test]
    fn zero_duration_samples_land_in_the_first_bucket() {
        let mut h = Histogram::new();
        let zero = SimDuration::from_nanos(0);
        for _ in 0..10 {
            h.record(zero.as_nanos());
        }
        assert_eq!(h.count(), 10);
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        // Every quantile of an all-zero sample is zero.
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.percentile_nanos(q), 0, "p{q} of all-zero sample");
        }
        assert_eq!(h.percentile_ms(0.5), 0.0);
        // Mixing in one real value keeps ranks consistent.
        h.record(SimDuration::from_millis(5).as_nanos());
        assert_eq!(h.percentile_nanos(0.5), 0);
        assert!(h.percentile_nanos(1.0) > 0);
    }

    #[test]
    fn max_adjacent_samples_stay_in_bounds() {
        // The top octave is where PR 3's bucket_range overflow lived:
        // exercise MAX itself and its nearest neighbours on both sides of
        // the topmost bucket boundary.
        let mut h = Histogram::new();
        let (top_lo, top_hi) = Histogram::bucket_bounds(u64::MAX);
        for v in [u64::MAX, u64::MAX - 1, top_lo, top_lo - 1, top_hi - 1] {
            h.record(v);
            let (lo, hi) = Histogram::bucket_bounds(v);
            assert!(lo <= v && v < hi || (v == u64::MAX && hi == u64::MAX && lo <= v));
        }
        assert_eq!(h.count(), 5);
        // All five land at or above the bucket just below the top one.
        let p_max = h.percentile_nanos(1.0);
        assert!(p_max >= Histogram::bucket_bounds(top_lo - 1).0);
        // The top bucket's bounds never wrap.
        assert!(top_lo < top_hi);
        assert_eq!(top_hi, u64::MAX);
        // Merging histograms holding MAX-adjacent samples is loss-free.
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.percentile_nanos(1.0), top_lo);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..200u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 1_000_000_000;
            h.record(x);
        }
        let mut last = 0;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let p = h.percentile_nanos(q);
            assert!(p >= last, "p{q} = {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for &x in &xs {
            whole.record(x);
        }
        for &x in &xs[..123] {
            left.record(x);
        }
        for &x in &xs[123..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn recorder_moments_match_online_stats() {
        let mut r = LatencyRecorder::new();
        let mut s = OnlineStats::new();
        for ms in [1u64, 5, 20, 3, 400] {
            let d = SimDuration::from_millis(ms);
            r.record(d);
            s.record(d.as_millis_f64());
        }
        assert_eq!(r.summary(), s.summary());
        assert_eq!(r.histogram().count(), 5);
        let p = r.histogram().percentiles_ms();
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999);
    }
}
