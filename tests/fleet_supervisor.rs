//! Fleet supervisor determinism tests.
//!
//! One `#[test]` on purpose: `exec::set_jobs` is process-global, so the
//! jobs-1 and jobs-4 runs must happen inside a single test (each
//! integration-test file is its own process, so toggling here cannot
//! race other suites).
//!
//! Three contracts are pinned:
//!
//! 1. **Quarantine determinism** — under injected chaos panics, the set
//!    of quarantined shards, the retry accounting, and the full rendered
//!    report are byte-identical at `--jobs 1` and `--jobs 4`: fault
//!    isolation must not introduce scheduling-dependent output.
//! 2. **Conservation** — survivors + quarantined always partition the
//!    fleet, and the rollups cover exactly the survivors.
//! 3. **Checkpoint/resume identity** — a run resumed from a mid-run
//!    checkpoint merges to the same bytes as an uninterrupted run, at a
//!    different worker count than the run that wrote the checkpoint.

use mobistore::experiments::fleet::{self, FleetOptions};
use mobistore::experiments::render::{render_target, RenderOptions};
use mobistore::experiments::Scale;
use mobistore::sim::exec;
use mobistore::sim::fleet::ChaosConfig;

#[test]
fn supervisor_is_deterministic_across_jobs_and_resume() {
    let scale = Scale::quick();
    let opts = FleetOptions {
        shards: 96,
        population: 768,
        chaos: ChaosConfig {
            panic_rate: 0.6,
            fail_point: None,
        },
        ..FleetOptions::default()
    };
    let render = RenderOptions {
        fleet: opts.clone(),
        ..RenderOptions::default()
    };

    exec::set_jobs(1);
    let serial = fleet::run(scale, &opts).expect("chaos fleet completes");
    let serial_text = render_target("fleet", scale, &render).text;

    exec::set_jobs(4);
    let parallel = fleet::run(scale, &opts).expect("chaos fleet completes");
    let parallel_text = render_target("fleet", scale, &render).text;

    // 1. Quarantine determinism across worker counts.
    assert!(
        !serial.quarantined.is_empty(),
        "rate 0.6 with 3 attempts should quarantine some of 96 shards"
    );
    assert_eq!(
        serial.quarantined, parallel.quarantined,
        "quarantine ledger differs across --jobs"
    );
    assert_eq!(
        serial_text, parallel_text,
        "chaos report differs across --jobs"
    );
    assert_eq!(
        format!("{:?}", serial.total),
        format!("{:?}", parallel.total),
        "survivor rollup differs across --jobs"
    );

    // 2. Conservation: every shard is a survivor or quarantined, and the
    // rollups cover exactly the survivors.
    assert_eq!(
        serial.rows.len() + serial.quarantined.len(),
        opts.shards as usize
    );
    assert_eq!(serial.survivors() as usize, serial.rows.len());
    let row_ops: u64 = serial.rows.iter().map(|r| r.ops).sum();
    assert_eq!(row_ops, serial.total.overall_response_ms.count);
    let expected_coverage = serial.rows.len() as f64 / opts.shards as f64;
    assert!((serial.coverage() - expected_coverage).abs() < 1e-12);
    for e in &serial.quarantined {
        assert_eq!(e.attempts, 3, "default budget is first try + 2 retries");
        assert!(e.cause.contains("chaos: injected panic"), "{}", e.cause);
    }

    // 3. Checkpoint/resume identity: write checkpoints at jobs 4, then
    // resume from the *final* checkpoint at jobs 2 — nothing re-simulates
    // and the merged state must be bit-identical; a fresh jobs-2 run from
    // a *mid-run* state must also converge to the same bytes.
    let dir = std::env::temp_dir().join("mobistore-fleet-supervisor-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ckpt = dir.join("fleet.ckpt");
    let ckpt_opts = FleetOptions {
        checkpoint_out: Some(ckpt.clone()),
        ..opts.clone()
    };
    let written = fleet::run(scale, &ckpt_opts).expect("checkpointed run");
    assert_eq!(format!("{written}"), format!("{parallel}"));

    exec::set_jobs(2);
    let resume_opts = FleetOptions {
        resume_from: Some(ckpt.clone()),
        ..opts.clone()
    };
    let resumed = fleet::run(scale, &resume_opts).expect("resume from final checkpoint");
    assert_eq!(
        format!("{resumed}"),
        format!("{parallel}"),
        "resume from the final checkpoint must reproduce the report"
    );
    assert_eq!(resumed.quarantined, parallel.quarantined);
    assert_eq!(resumed.rows, parallel.rows);
    assert_eq!(
        format!("{:?}", resumed.total),
        format!("{:?}", parallel.total)
    );

    // A fingerprint-mismatched resume is refused with the typed error.
    let mismatched = FleetOptions {
        seed: 2001,
        resume_from: Some(ckpt),
        ..opts.clone()
    };
    let err = fleet::run(scale, &mismatched).expect_err("mismatched resume must fail");
    assert!(
        format!("{err}").contains("fingerprint"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
