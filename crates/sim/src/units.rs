//! Data-size and bandwidth units.
//!
//! The paper quotes sizes in "Kbytes"/"Mbytes" (binary: 1 Kbyte = 1024 bytes)
//! and bandwidths in Kbytes/s. This module provides the conversion helpers
//! used throughout the simulator.

use core::fmt;

use crate::time::SimDuration;

/// Bytes per kilobyte (binary).
pub const KIB: u64 = 1024;
/// Bytes per megabyte (binary).
pub const MIB: u64 = 1024 * 1024;

/// A transfer rate in bytes per second.
///
/// # Examples
///
/// ```
/// use mobistore_sim::units::Bandwidth;
/// use mobistore_sim::time::SimDuration;
///
/// let bw = Bandwidth::from_kib_per_s(512.0);
/// assert_eq!(bw.transfer_time(512 * 1024), SimDuration::from_secs(1));
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn from_bytes_per_s(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        Bandwidth(bytes_per_sec)
    }

    /// Creates a bandwidth from Kbytes (1024 bytes) per second, the unit used
    /// throughout the paper.
    pub fn from_kib_per_s(kib_per_sec: f64) -> Self {
        Bandwidth::from_bytes_per_s(kib_per_sec * KIB as f64)
    }

    /// Returns the rate in bytes per second.
    pub fn bytes_per_s(self) -> f64 {
        self.0
    }

    /// Returns the rate in Kbytes per second.
    pub fn kib_per_s(self) -> f64 {
        self.0 / KIB as f64
    }

    /// Returns the time needed to transfer `bytes` at this rate.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }

    /// Returns how many bytes can be transferred in `dur` at this rate.
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        (self.0 * dur.as_secs_f64()).floor() as u64
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}KB/s", self.kib_per_s())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} Kbytes/s", self.kib_per_s())
    }
}

/// Formats a byte count using the paper's binary units.
///
/// # Examples
///
/// ```
/// assert_eq!(mobistore_sim::units::format_bytes(4 * 1024), "4.0 KB");
/// ```
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= MIB {
        format!("{:.1} MB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_linear() {
        let bw = Bandwidth::from_kib_per_s(100.0);
        let t1 = bw.transfer_time(100 * KIB);
        let t2 = bw.transfer_time(200 * KIB);
        assert_eq!(t1, SimDuration::from_secs(1));
        assert_eq!(t2, SimDuration::from_secs(2));
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let bw = Bandwidth::from_kib_per_s(75.0);
        let n = 64 * KIB;
        let t = bw.transfer_time(n);
        let back = bw.bytes_in(t);
        // Rounding in the ns clock may lose at most a few bytes.
        assert!(back.abs_diff(n) <= 2, "{back} vs {n}");
    }

    #[test]
    fn unit_conversions() {
        let bw = Bandwidth::from_kib_per_s(2125.0);
        assert!((bw.bytes_per_s() - 2125.0 * 1024.0).abs() < 1e-6);
        assert!((bw.kib_per_s() - 2125.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = Bandwidth::from_bytes_per_s(0.0);
    }

    #[test]
    fn format_bytes_picks_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(4 * KIB), "4.0 KB");
        assert_eq!(format_bytes(10 * MIB), "10.0 MB");
    }
}
