#!/usr/bin/env bash
# Times the full repro pipeline serial (--jobs 1) vs parallel (all cores)
# and writes the results to BENCH_repro.json in the repo root. The
# per-target wall-clock breakdown comes from repro's own --timings-json
# self-profiling (mobistore-timings/1.1: per-target ops and ops/sec),
# the throughput block comes from `repro throughput --throughput-json`
# (mobistore-throughput/1: warmup + median-of-reps simulated ops/sec per
# cell), and the environment block records the toolchain and host so the
# numbers are comparable across machines.
#
# Usage: scripts/bench_repro.sh [scale] [seed] [reps]
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE="${1:-0.05}"
SEED="${2:-1994}"
REPS="${3:-3}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
RUSTC_VERSION="$(rustc -V 2>/dev/null || echo unknown)"
CPU_MODEL="$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null \
    || sysctl -n machdep.cpu.brand_string 2>/dev/null || echo unknown)"

cargo build --release --workspace >/dev/null
REPRO=target/release/repro

now_ms() { date +%s%3N; }

run() { # run <jobs> <outfile> <timingsfile> -> prints elapsed ms
    local jobs="$1" out="$2" timings="$3"
    local t0 t1
    t0=$(now_ms)
    "$REPRO" --scale "$SCALE" --seed "$SEED" --jobs "$jobs" \
        --timings-json "$timings" >"$out" 2>/dev/null
    t1=$(now_ms)
    echo $((t1 - t0))
}

echo "benching repro --scale $SCALE --seed $SEED (parallel jobs=$JOBS)..." >&2

SERIAL_OUT="$(mktemp)"
PARALLEL_OUT="$(mktemp)"
SERIAL_TIMINGS="$(mktemp)"
PARALLEL_TIMINGS="$(mktemp)"
THROUGHPUT_JSON="$(mktemp)"
SERIAL_MS=$(run 1 "$SERIAL_OUT" "$SERIAL_TIMINGS")
PARALLEL_MS=$(run "$JOBS" "$PARALLEL_OUT" "$PARALLEL_TIMINGS")

echo "running throughput harness ($REPS reps)..." >&2
"$REPRO" --scale "$SCALE" --seed "$SEED" --jobs "$JOBS" \
    --throughput-reps "$REPS" --throughput-json "$THROUGHPUT_JSON" \
    throughput >/dev/null 2>&1

if cmp -s "$SERIAL_OUT" "$PARALLEL_OUT"; then
    IDENTICAL=true
else
    IDENTICAL=false
fi
rm -f "$SERIAL_OUT" "$PARALLEL_OUT"

SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $SERIAL_MS / $PARALLEL_MS }")

if command -v jq >/dev/null; then
    # Embed repro's own per-target profiles (mobistore-timings/1.1), the
    # throughput harness block (mobistore-throughput/1), and the host
    # environment.
    jq -n \
        --arg bench "repro --scale $SCALE --seed $SEED" \
        --arg rustc "$RUSTC_VERSION" \
        --arg cpu "$CPU_MODEL" \
        --argjson cores "$JOBS" \
        --argjson serial_ms "$SERIAL_MS" \
        --argjson parallel_ms "$PARALLEL_MS" \
        --argjson speedup "$SPEEDUP" \
        --argjson identical "$IDENTICAL" \
        --slurpfile serial "$SERIAL_TIMINGS" \
        --slurpfile parallel "$PARALLEL_TIMINGS" \
        --slurpfile throughput "$THROUGHPUT_JSON" \
        '{benchmark: $bench,
          environment: {rustc: $rustc, cpu: $cpu, cores: $cores, jobs: $cores},
          cores: $cores, serial_ms: $serial_ms,
          parallel_ms: $parallel_ms, speedup: $speedup,
          output_identical: $identical,
          serial_profile: $serial[0], parallel_profile: $parallel[0],
          throughput: $throughput[0]}' \
        > BENCH_repro.json
else
    cat > BENCH_repro.json <<EOF
{
  "benchmark": "repro --scale $SCALE --seed $SEED",
  "environment": {
    "rustc": "$RUSTC_VERSION",
    "cpu": "$CPU_MODEL",
    "cores": $JOBS,
    "jobs": $JOBS
  },
  "cores": $JOBS,
  "serial_ms": $SERIAL_MS,
  "parallel_ms": $PARALLEL_MS,
  "speedup": $SPEEDUP,
  "output_identical": $IDENTICAL,
  "throughput": $(cat "$THROUGHPUT_JSON")
}
EOF
fi
rm -f "$SERIAL_TIMINGS" "$PARALLEL_TIMINGS" "$THROUGHPUT_JSON"

cat BENCH_repro.json
