//! Criterion benches regenerating each paper figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mobistore_experiments::{figure1, figure2, figure3, figure4, figure5, Scale};
use mobistore_workload::Workload;

fn bench_figure1(c: &mut Criterion) {
    c.bench_function("figure1_write_latency_curves", |b| {
        b.iter(|| black_box(figure1::run()));
    });
}

fn bench_figure2(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_utilization_sweep");
    group.sample_size(10);
    group.bench_function("dos", |b| {
        b.iter(|| black_box(figure2::run_curve(Workload::Dos, Scale::quick())));
    });
    group.finish();
}

fn bench_figure3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3_overwrite_throughput");
    group.sample_size(10);
    group.bench_function("three_live_levels", |b| {
        b.iter(|| black_box(figure3::run_with_steps(4)));
    });
    group.finish();
}

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_dram_flash_sweep");
    group.sample_size(10);
    group.bench_function("dos", |b| {
        b.iter(|| black_box(figure4::run(Scale::quick())));
    });
    group.finish();
}

fn bench_figure5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_sram_sweep");
    group.sample_size(10);
    group.bench_function("mac", |b| {
        b.iter(|| black_box(figure5::run_curve(Workload::Mac, Scale::quick())));
    });
    group.finish();
}

criterion_group!(figures, bench_figure1, bench_figure2, bench_figure3, bench_figure4, bench_figure5);
criterion_main!(figures);
