//! The OmniBook testbed model for the `mobistore` reproduction of *Storage
//! Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! §3 of the paper measures the three storage devices on an HP OmniBook
//! 300 under MS-DOS — numbers that embed file-system and compression
//! software costs the raw devices do not have. Since the 1994 testbed is
//! unavailable, this crate models it:
//!
//! * [`compress`] — DoubleSpace/Stacker/MFFS software compression with the
//!   paper's ~50% Moby-Dick ratio and the random-data fast path;
//! * [`dosfs`] — the DOS file-system testbeds over the magnetic disk and
//!   the flash disk, including the compressed-write batching §3 observes;
//! * [`mffs`] — the Microsoft Flash File System 2.00 testbed over the
//!   Intel card, with the linear re-write anomaly of Figure 1 and the
//!   cumulative/cleaning decay of Figure 3.
//!
//! These testbeds regenerate Table 1 and Figures 1 and 3; the calibration
//! constants are documented at their definitions and audited in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod dosfs;
pub mod mffs;

pub use compress::{Compressor, DataClass};
pub use dosfs::{DiskTestbed, DosFsParams, FlashDiskTestbed};
pub use mffs::{FlashCardTestbed, MffsParams};

use mobistore_sim::time::SimDuration;
use mobistore_sim::units::Bandwidth;

/// The DoubleSpace compressor on the OmniBook's 386SXLV (calibrated to
/// Table 1's cu140 compressed columns).
pub fn doublespace() -> Compressor {
    Compressor::new(
        0.5,
        Bandwidth::from_kib_per_s(290.0),
        Bandwidth::from_kib_per_s(400.0),
    )
}

/// The Stacker compressor (calibrated to Table 1's sdp10 compressed
/// columns).
pub fn stacker() -> Compressor {
    Compressor::new(
        0.5,
        Bandwidth::from_kib_per_s(225.0),
        Bandwidth::from_kib_per_s(400.0),
    )
}

/// MFFS 2.00's built-in compressor (calibrated to Table 1's Intel
/// columns; its decompressor is quick, giving the 2x random-vs-compressed
/// read gap).
pub fn mffs_compressor() -> Compressor {
    Compressor::new(
        0.5,
        Bandwidth::from_kib_per_s(225.0),
        Bandwidth::from_kib_per_s(750.0),
    )
}

/// One micro-benchmark run: per-request latencies plus totals.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Latency of each request, in milliseconds (Figure 1's y-axis).
    pub chunk_latencies_ms: Vec<f64>,
    /// Total elapsed time.
    pub total: SimDuration,
    /// Total bytes moved.
    pub bytes: u64,
}

impl BenchRun {
    /// Creates an empty run expecting `bytes` in total.
    pub fn new(bytes: u64) -> Self {
        BenchRun {
            chunk_latencies_ms: Vec::new(),
            total: SimDuration::ZERO,
            bytes,
        }
    }

    /// Records one request.
    pub fn push(&mut self, latency: SimDuration, _bytes: u64) {
        self.chunk_latencies_ms.push(latency.as_millis_f64());
        self.total += latency;
    }

    /// Average throughput in Kbytes/s (Table 1's unit).
    pub fn throughput_kib_s(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.bytes as f64 / 1024.0 / self.total.as_secs_f64()
        }
    }

    /// Instantaneous throughput per request in Kbytes/s, given the request
    /// size (Figure 1(b)'s y-axis).
    pub fn instantaneous_kib_s(&self, chunk_bytes: u64) -> Vec<f64> {
        self.chunk_latencies_ms
            .iter()
            .map(|ms| chunk_bytes as f64 / 1024.0 / (ms / 1000.0))
            .collect()
    }
}
