//! The observability exports are part of `repro`'s deterministic output
//! surface: the `observe` report, its JSONL event stream, and the
//! versioned metrics JSON must all be byte-identical at any `--jobs`
//! count, because every event is stamped with sim time only and
//! `parallel_map` returns results in request order.
//!
//! The jobs-1-vs-jobs-4 comparison is one `#[test]` on purpose:
//! `exec::set_jobs` is process-global and the default harness runs tests
//! concurrently, so splitting the serial and parallel halves would race
//! on the worker-count override. The content checks below don't touch
//! the jobs setting — results are jobs-independent by construction.

use mobistore::experiments::export::{metrics_json, TargetExport, METRICS_SCHEMA};
use mobistore::experiments::render::{render_target, RenderOptions, TARGETS};
use mobistore::experiments::Scale;
use mobistore::sim::exec;

fn observe_options() -> RenderOptions {
    RenderOptions {
        collect_events: true,
        ..RenderOptions::default()
    }
}

/// Renders `observe` with event collection on and serializes everything
/// the `repro` flags would write: stdout text, `--events-out` JSONL, and
/// the `--metrics-out` document.
fn render_exports() -> (String, String, String) {
    let r = render_target("observe", Scale::quick(), &observe_options());
    let events = r.events_jsonl.expect("observe collects events");
    let doc = metrics_json(
        Scale::quick(),
        &[TargetExport {
            target: "observe",
            rows: &r.metrics,
            fleet: None,
            durability: None,
        }],
    );
    (r.text, events, doc)
}

#[test]
fn exports_are_byte_identical_across_job_counts() {
    exec::set_jobs(1);
    let (text1, events1, doc1) = render_exports();

    exec::set_jobs(4);
    let (text4, events4, doc4) = render_exports();

    assert_eq!(text1, text4, "observe report differs across job counts");
    assert_eq!(events1, events4, "event stream differs across job counts");
    assert_eq!(doc1, doc4, "metrics export differs across job counts");
}

#[test]
fn event_stream_is_well_formed_and_complete() {
    let (text, events, _) = render_exports();

    // The report shows all four tail percentiles per device cell.
    for header in ["p50", "p90", "p99", "p99.9"] {
        assert!(text.contains(header), "report missing {header}");
    }

    // The stream covers every required event family.
    for needle in [
        "\"event\":\"op_issued\"",
        "\"event\":\"op_completed\"",
        "\"event\":\"cache_read\"",
        "\"event\":\"disk_spin_up\"",
        "\"event\":\"disk_spin_down\"",
        "\"event\":\"flash_clean_start\"",
        "\"event\":\"flash_clean_end\"",
        "\"event\":\"fault_injected\"",
        "\"event\":\"power_fail\"",
        "\"event\":\"recovery_end\"",
    ] {
        assert!(events.contains(needle), "missing {needle}");
    }

    // Every line is a braced object with cell context and a sim-time stamp.
    for line in events.lines() {
        assert!(
            line.starts_with("{\"workload\":\"") && line.ends_with('}'),
            "malformed line: {line}"
        );
        assert!(line.contains("\"device\":\""), "no device: {line}");
        assert!(line.contains("\"t_ns\":"), "no timestamp: {line}");
    }

    // Completions carry the queue/service/response breakdown.
    let completed = events
        .lines()
        .find(|l| l.contains("\"event\":\"op_completed\""))
        .expect("at least one completion");
    for field in ["\"queue_ns\":", "\"service_ns\":", "\"response_ns\":"] {
        assert!(completed.contains(field), "completion missing {field}");
    }
}

#[test]
fn metrics_document_carries_schema_and_every_cell() {
    let (_, _, doc) = render_exports();
    assert!(doc.starts_with(&format!("{{\"schema\":\"{METRICS_SCHEMA}\"")));
    // One row per workload × device cell, percentiles included.
    for name in [
        "\"name\":\"mac/cu140-disk\"",
        "\"name\":\"mac/sdp5-flashdisk\"",
        "\"name\":\"mac/intel-card\"",
        "\"name\":\"dos/cu140-disk\"",
        "\"name\":\"dos/sdp5-flashdisk\"",
        "\"name\":\"dos/intel-card\"",
    ] {
        assert!(doc.contains(name), "missing row {name}");
    }
    for field in ["\"p50_ms\":", "\"p90_ms\":", "\"p99_ms\":", "\"p999_ms\":"] {
        assert!(doc.contains(field), "missing {field}");
    }
}

#[test]
fn default_render_options_leave_targets_unobserved() {
    // With observability off, non-observing targets expose no event
    // stream — the goldens' rendered bytes can't pick up new output.
    assert!(TARGETS.contains(&"observe"));
    let r = render_target("table1", Scale::quick(), &RenderOptions::default());
    assert!(r.events_jsonl.is_none());
    assert!(r.metrics.is_empty());
}
