//! §5.3 — asynchronous cleaning on the SunDisk SDP5A flash disk.
//!
//! The SDP5A pre-erases sectors during idle time: erasure proceeds at
//! 150 Kbytes/s, and pre-erased sectors accept writes at 400 Kbytes/s
//! instead of the combined ≈ 109 Kbytes/s. Published results: write
//! response falls 56–61% across the traces (a factor of ≈ 2.5), with
//! minimal impact on energy.

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{sdp5_datasheet, sdp5a_datasheet};
use mobistore_sim::exec::parallel_map;
use mobistore_workload::Workload;

use crate::{shared_trace, Scale};

/// One trace's synchronous-vs-asynchronous comparison.
#[derive(Debug, Clone)]
pub struct AsyncRow {
    /// Which trace.
    pub workload: Workload,
    /// The SDP5 (erase-coupled writes) result.
    pub synchronous: Metrics,
    /// The SDP5A (asynchronous pre-erasure) result.
    pub asynchronous: Metrics,
}

impl AsyncRow {
    /// Fractional reduction in mean write response (paper: 0.56–0.61).
    pub fn write_response_reduction(&self) -> f64 {
        1.0 - self.asynchronous.write_response_ms.mean / self.synchronous.write_response_ms.mean
    }

    /// Fractional change in energy (paper: minimal).
    pub fn energy_change(&self) -> f64 {
        self.asynchronous.energy.get() / self.synchronous.energy.get() - 1.0
    }
}

/// The §5.3 experiment.
#[derive(Debug, Clone)]
pub struct AsyncCleaning {
    /// One row per trace.
    pub rows: Vec<AsyncRow>,
}

/// Runs the comparison over all three traces in parallel.
pub fn run(scale: Scale) -> AsyncCleaning {
    let rows = parallel_map(&Workload::TABLE4, |&w| run_row(w, scale));
    AsyncCleaning { rows }
}

/// Runs the comparison for one trace (the sync/async pair in parallel).
pub fn run_row(workload: Workload, scale: Scale) -> AsyncRow {
    let trace = shared_trace(workload, scale);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let configs = [
        (
            SystemConfig::flash_disk(sdp5_datasheet()).with_dram(dram),
            "sdp5 (sync)",
        ),
        (
            SystemConfig::flash_disk(sdp5a_datasheet()).with_dram(dram),
            "sdp5a (async)",
        ),
    ];
    let mut results = parallel_map(&configs, |(cfg, suffix)| {
        let mut m = simulate(cfg, &trace);
        m.name = format!("{} {suffix}", workload.name());
        m
    });
    let asynchronous = results.pop().expect("async row");
    let synchronous = results.pop().expect("sync row");
    AsyncRow {
        workload,
        synchronous,
        asynchronous,
    }
}

impl fmt::Display for AsyncCleaning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section 5.3: SDP5A asynchronous cleaning (paper: write response -56..61%)"
        )?;
        writeln!(
            f,
            "{:<8} {:>16} {:>16} {:>12} {:>12}",
            "trace", "sync write (ms)", "async write (ms)", "reduction", "energy chg"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>16.3} {:>16.3} {:>11.0}% {:>11.1}%",
                r.workload.name(),
                r.synchronous.write_response_ms.mean,
                r.asynchronous.write_response_ms.mean,
                r.write_response_reduction() * 100.0,
                r.energy_change() * 100.0,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_cuts_write_response_by_more_than_half() {
        let row = run_row(Workload::Mac, Scale::quick());
        let red = row.write_response_reduction();
        assert!((0.40..0.80).contains(&red), "reduction {red}");
    }

    #[test]
    fn energy_impact_is_minimal() {
        let row = run_row(Workload::Mac, Scale::quick());
        assert!(
            row.energy_change().abs() < 0.10,
            "energy change {}",
            row.energy_change()
        );
    }

    #[test]
    fn renders() {
        let exp = AsyncCleaning {
            rows: vec![run_row(Workload::Dos, Scale::quick())],
        };
        let text = exp.to_string();
        assert!(text.contains("async"));
    }
}
