//! The Microsoft Flash File System 2.00 model.
//!
//! §3 found MFFS 2.00 pathological: *"The latency of each write increases
//! linearly as the file grows, apparently because data already written to
//! the flash card are written again, even in the absence of cleaning"*
//! (Figure 1), and throughput also decays with cumulative data written and
//! with storage utilization (Figure 3). Reads degrade with file size too
//! (Table 1: 645 → 37 Kbytes/s from a 4-Kbyte to a 1-Mbyte file).
//!
//! The model layers three documented mechanisms over a real
//! [`FlashCardStore`]:
//!
//! * a per-write penalty proportional to the file's current size (the
//!   re-write anomaly; dominates Figure 1);
//! * a smaller penalty proportional to cumulative bytes written since the
//!   card was formatted (growing linked-list metadata; the gentle decay of
//!   Figure 3's 10%-full curve);
//! * real segment cleaning via the store (the collapse of Figure 3's 95%-
//!   full curve).
//!
//! MFFS compression is always on; random data still pays the compression
//! attempt on writes but skips decompression on reads (§3).

use std::collections::HashMap;

use mobistore_device::params::FlashCardParams;
use mobistore_flash::store::{CleanerMode, FlashCardConfig, FlashCardStore, VictimPolicy};
use mobistore_sim::time::{SimDuration, SimTime};

use crate::compress::{Compressor, DataClass};
use crate::BenchRun;

/// MFFS 2.00 cost constants.
#[derive(Debug, Clone)]
pub struct MffsParams {
    /// Per-request software overhead on reads.
    pub base_read: SimDuration,
    /// Per-request software overhead on writes.
    pub base_write: SimDuration,
    /// Seconds of re-write work per byte of current file size, per write
    /// (Figure 1's slope: ≈ 0.21 ms per Kbyte).
    pub write_file_coeff: f64,
    /// Seconds per byte of current file size, per read (Table 1's
    /// large-file read collapse: ≈ 0.10 ms per Kbyte).
    pub read_file_coeff: f64,
    /// Seconds per byte of cumulative data written since format, per write
    /// (Figure 3's gentle decay: ≈ 0.011 ms per Kbyte).
    pub cumulative_coeff: f64,
    /// The built-in compressor.
    pub compressor: Compressor,
}

impl MffsParams {
    /// Constants calibrated to §3's measurements (see module docs).
    pub fn mffs2() -> Self {
        MffsParams {
            base_read: SimDuration::from_millis_f64(5.5),
            base_write: SimDuration::from_millis(25),
            write_file_coeff: 0.21e-3 / 1024.0,
            read_file_coeff: 0.10e-3 / 1024.0,
            cumulative_coeff: 0.011e-3 / 1024.0,
            compressor: crate::mffs_compressor(),
        }
    }
}

/// A file known to the testbed.
#[derive(Debug, Clone, Copy)]
struct FileEntry {
    base_lbn: u64,
    bytes: u64,
}

/// A handle to a testbed file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileHandle(u64);

/// The flash-card micro-benchmark testbed: MFFS 2.00 over an Intel
/// Series 2 card.
///
/// # Examples
///
/// ```
/// use mobistore_device::params::intel_datasheet;
/// use mobistore_fsmodel::compress::DataClass;
/// use mobistore_fsmodel::mffs::{FlashCardTestbed, MffsParams};
///
/// let mut tb = FlashCardTestbed::new(intel_datasheet(), 10 * 1024 * 1024, MffsParams::mffs2());
/// let run = tb.write_file(4 * 1024, 4 * 1024, DataClass::Compressible);
/// assert!(run.throughput_kib_s() > 0.0);
/// ```
#[derive(Debug)]
pub struct FlashCardTestbed {
    params: FlashCardParams,
    capacity_bytes: u64,
    mffs: MffsParams,
    card: FlashCardStore,
    clock: SimTime,
    cumulative_written: u64,
    files: HashMap<FileHandle, FileEntry>,
    next_handle: u64,
    next_lbn: u64,
}

/// Block size MFFS allocates in (DOS sectors).
const BLOCK: u64 = 512;

impl FlashCardTestbed {
    /// Creates the testbed over a freshly erased card (§3: "the Intel
    /// flash card was completely erased prior to each benchmark").
    pub fn new(params: FlashCardParams, capacity_bytes: u64, mffs: MffsParams) -> Self {
        let card = Self::fresh_card(&params, capacity_bytes);
        FlashCardTestbed {
            params,
            capacity_bytes,
            mffs,
            card,
            clock: SimTime::ZERO,
            cumulative_written: 0,
            files: HashMap::new(),
            next_handle: 0,
            next_lbn: 0,
        }
    }

    fn fresh_card(params: &FlashCardParams, capacity_bytes: u64) -> FlashCardStore {
        FlashCardStore::new(FlashCardConfig {
            params: params.clone(),
            block_size: BLOCK,
            capacity_bytes,
            mode: CleanerMode::Background,
            victim_policy: VictimPolicy::GreedyMinLive,
            queueing: mobistore_device::QueueDiscipline::Fifo,
        })
    }

    /// Erases the card and forgets all files (the inter-experiment format
    /// of §3 and §5.2).
    pub fn format(&mut self) {
        self.card = Self::fresh_card(&self.params, self.capacity_bytes);
        self.clock = SimTime::ZERO;
        self.cumulative_written = 0;
        self.files.clear();
        self.next_handle = 0;
        self.next_lbn = 0;
    }

    /// Total bytes written (pre-compression) since the last format.
    pub fn cumulative_written(&self) -> u64 {
        self.cumulative_written
    }

    /// Live bytes currently on the card.
    pub fn live_bytes(&self) -> u64 {
        self.card.live_blocks() * BLOCK
    }

    /// The underlying store, for cleaning/wear inspection.
    pub fn card(&self) -> &FlashCardStore {
        &self.card
    }

    /// Creates an empty file.
    pub fn create_file(&mut self) -> FileHandle {
        let handle = FileHandle(self.next_handle);
        self.next_handle += 1;
        self.files.insert(
            handle,
            FileEntry {
                base_lbn: u64::MAX,
                bytes: 0,
            },
        );
        handle
    }

    /// Appends one benchmark request to a file, returning its latency.
    /// This is Figure 1's inner loop.
    pub fn append_chunk(
        &mut self,
        handle: FileHandle,
        bytes: u64,
        class: DataClass,
    ) -> SimDuration {
        let entry = *self.files.get(&handle).expect("unknown file");
        let stored = self.mffs.compressor.stored_bytes(bytes, class);
        let blocks = stored.div_ceil(BLOCK).max(1) as u32;
        let lbn = self.alloc_blocks(u64::from(blocks));

        // The §3 anomaly: each append re-writes work proportional to the
        // file's *current* size, plus the cumulative-metadata penalty.
        let anomaly = SimDuration::from_secs_f64(
            entry.bytes as f64 * self.mffs.write_file_coeff
                + self.cumulative_written as f64 * self.mffs.cumulative_coeff,
        );
        let svc = self.card.write(self.clock, lbn, blocks);
        let device = svc.response(self.clock);
        self.clock =
            svc.end + anomaly + self.mffs.base_write + self.mffs.compressor.compress_time(bytes);

        let mut entry = entry;
        if entry.base_lbn == u64::MAX {
            entry.base_lbn = lbn;
        }
        entry.bytes += bytes;
        self.files.insert(handle, entry);
        self.cumulative_written += bytes;

        self.mffs.base_write + self.mffs.compressor.compress_time(bytes) + anomaly + device
    }

    /// Overwrites one request inside an existing file (Figure 3's inner
    /// loop), returning its latency.
    pub fn overwrite_chunk(
        &mut self,
        handle: FileHandle,
        offset: u64,
        bytes: u64,
        class: DataClass,
    ) -> SimDuration {
        let entry = *self.files.get(&handle).expect("unknown file");
        assert!(offset + bytes <= entry.bytes, "overwrite past EOF");
        let stored = self.mffs.compressor.stored_bytes(bytes, class);
        let blocks = stored.div_ceil(BLOCK).max(1) as u32;
        let lbn = entry.base_lbn + offset / BLOCK;

        let anomaly = SimDuration::from_secs_f64(
            entry.bytes as f64 * self.mffs.write_file_coeff
                + self.cumulative_written as f64 * self.mffs.cumulative_coeff,
        );
        let svc = self.card.write(self.clock, lbn, blocks);
        let device = svc.response(self.clock);
        self.clock =
            svc.end + anomaly + self.mffs.base_write + self.mffs.compressor.compress_time(bytes);
        self.cumulative_written += bytes;

        self.mffs.base_write + self.mffs.compressor.compress_time(bytes) + anomaly + device
    }

    /// Writes a whole file in `chunk_bytes` requests (the Table 1 write
    /// benchmark).
    pub fn write_file(&mut self, file_bytes: u64, chunk_bytes: u64, class: DataClass) -> BenchRun {
        let handle = self.create_file();
        let mut run = BenchRun::new(file_bytes);
        let chunks = file_bytes.div_ceil(chunk_bytes);
        for i in 0..chunks {
            let bytes = chunk_bytes.min(file_bytes - i * chunk_bytes);
            let latency = self.append_chunk(handle, bytes, class);
            run.push(latency, bytes);
        }
        run
    }

    /// Reads a whole file in `chunk_bytes` requests (the Table 1 read
    /// benchmark). The §3 read anomaly charges work proportional to file
    /// size on every request.
    pub fn read_file(
        &mut self,
        handle: FileHandle,
        chunk_bytes: u64,
        class: DataClass,
    ) -> BenchRun {
        let entry = *self.files.get(&handle).expect("unknown file");
        let mut run = BenchRun::new(entry.bytes);
        let chunks = entry.bytes.div_ceil(chunk_bytes);
        for i in 0..chunks {
            let bytes = chunk_bytes.min(entry.bytes - i * chunk_bytes);
            let stored = self.mffs.compressor.stored_bytes(bytes, class);
            let blocks = stored.div_ceil(BLOCK).max(1) as u32;
            let svc = self
                .card
                .read(self.clock, entry.base_lbn + i * chunk_bytes / BLOCK, blocks);
            let device = svc.response(self.clock);
            let anomaly =
                SimDuration::from_secs_f64(entry.bytes as f64 * self.mffs.read_file_coeff);
            let latency = self.mffs.base_read
                + device
                + anomaly
                + self.mffs.compressor.decompress_time(bytes, class);
            self.clock = svc.end + self.mffs.base_read + anomaly;
            run.push(latency, bytes);
        }
        run
    }

    /// Reads one request from within a file, returning its latency (used
    /// by the §5.1 verification replay).
    pub fn read_chunk(
        &mut self,
        handle: FileHandle,
        offset: u64,
        bytes: u64,
        class: DataClass,
    ) -> SimDuration {
        let entry = *self.files.get(&handle).expect("unknown file");
        assert!(offset + bytes <= entry.bytes, "read past EOF");
        let stored = self.mffs.compressor.stored_bytes(bytes, class);
        let blocks = stored.div_ceil(BLOCK).max(1) as u32;
        let svc = self
            .card
            .read(self.clock, entry.base_lbn + offset / BLOCK, blocks);
        let device = svc.response(self.clock);
        let anomaly = SimDuration::from_secs_f64(entry.bytes as f64 * self.mffs.read_file_coeff);
        self.clock = svc.end + self.mffs.base_read + anomaly;
        self.mffs.base_read + device + anomaly + self.mffs.compressor.decompress_time(bytes, class)
    }

    /// Deletes a file, trimming its blocks (untimed, as directory
    /// operations are noise at this granularity).
    pub fn delete_file(&mut self, handle: FileHandle) {
        if let Some(entry) = self.files.remove(&handle) {
            if entry.base_lbn != u64::MAX {
                let blocks = entry.bytes.div_ceil(BLOCK) as u32;
                self.card.trim(entry.base_lbn, blocks);
            }
        }
    }

    /// Installs `bytes` of live data as one file without timing it (the
    /// setup step of Figure 3's experiment).
    pub fn install_live_data(&mut self, bytes: u64) -> FileHandle {
        let blocks = bytes.div_ceil(BLOCK);
        let lbn = self.alloc_blocks(blocks);
        self.card.preload(lbn..lbn + blocks);
        let handle = FileHandle(self.next_handle);
        self.next_handle += 1;
        self.files.insert(
            handle,
            FileEntry {
                base_lbn: lbn,
                bytes,
            },
        );
        handle
    }

    fn alloc_blocks(&mut self, blocks: u64) -> u64 {
        let lbn = self.next_lbn;
        self.next_lbn += blocks;
        lbn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_device::params::intel_datasheet;
    use mobistore_sim::rng::SimRng;
    use mobistore_sim::units::{KIB, MIB};

    fn testbed() -> FlashCardTestbed {
        FlashCardTestbed::new(intel_datasheet(), 10 * MIB, MffsParams::mffs2())
    }

    #[test]
    fn write_latency_grows_linearly_with_file_size() {
        // Figure 1(a): latency increases linearly as the file grows.
        let mut tb = testbed();
        let run = tb.write_file(MIB, 4 * KIB, DataClass::Compressible);
        let first = run.chunk_latencies_ms[1];
        let mid = run.chunk_latencies_ms[128];
        let last = run.chunk_latencies_ms[255];
        assert!(mid > 2.0 * first, "mid {mid} vs first {first}");
        // Linearity: the increase from mid to last matches first to mid.
        let slope1 = mid - first;
        let slope2 = last - mid;
        assert!((slope1 / slope2 - 1.0).abs() < 0.3, "{slope1} vs {slope2}");
        // Endpoint near the paper's ~230 ms.
        assert!((100.0..400.0).contains(&last), "last {last}");
    }

    #[test]
    fn large_file_write_throughput_collapses() {
        // Table 1: Intel writes 83 KB/s (4-KB file) vs 27 KB/s (1-MB file),
        // compressed.
        let mut tb = testbed();
        let small = tb.write_file(4 * KIB, 4 * KIB, DataClass::Compressible);
        tb.format();
        let large = tb.write_file(MIB, 4 * KIB, DataClass::Compressible);
        assert!(
            small.throughput_kib_s() > 2.0 * large.throughput_kib_s(),
            "small {} vs large {}",
            small.throughput_kib_s(),
            large.throughput_kib_s()
        );
    }

    #[test]
    fn random_reads_twice_as_fast_as_compressed() {
        // §3: reads of uncompressible data get about twice the bandwidth.
        let mut tb = testbed();
        let f = tb.create_file();
        for _ in 0..1 {
            tb.append_chunk(f, 4 * KIB, DataClass::Random);
        }
        let random = tb.read_file(f, 4 * KIB, DataClass::Random);
        let compressed = tb.read_file(f, 4 * KIB, DataClass::Compressible);
        let ratio = random.throughput_kib_s() / compressed.throughput_kib_s();
        assert!((1.4..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn reads_degrade_with_file_size() {
        // Table 1: Intel reads 645 -> 37 KB/s as files grow to 1 MB.
        let mut tb = testbed();
        let small = tb.create_file();
        tb.append_chunk(small, 4 * KIB, DataClass::Random);
        let small_run = tb.read_file(small, 4 * KIB, DataClass::Random);
        tb.format();
        let big = tb.create_file();
        for _ in 0..256 {
            tb.append_chunk(big, 4 * KIB, DataClass::Random);
        }
        let big_run = tb.read_file(big, 4 * KIB, DataClass::Random);
        assert!(
            small_run.throughput_kib_s() > 5.0 * big_run.throughput_kib_s(),
            "small {} vs big {}",
            small_run.throughput_kib_s(),
            big_run.throughput_kib_s()
        );
    }

    #[test]
    fn utilization_collapses_overwrite_throughput() {
        // Figure 3: 9.5 MB live on a 10-MB card hits cleaning almost
        // immediately; 1 MB live stays mild for the first megabytes.
        let run_with_live = |live_mb: u64| {
            let mut tb = testbed();
            let f = tb.install_live_data(live_mb * MIB);
            let mut rng = SimRng::seed_from_u64(live_mb);
            let mut total = SimDuration::ZERO;
            let chunk = 4 * KIB;
            let writes = 512; // 2 MB of overwrites
            for _ in 0..writes {
                let offset = rng.below(live_mb * MIB / chunk) * chunk;
                total += tb.overwrite_chunk(f, offset, chunk, DataClass::Compressible);
            }
            (writes * chunk) as f64 / 1024.0 / total.as_secs_f64()
        };
        let sparse = run_with_live(1);
        let full = run_with_live(9);
        assert!(sparse > 1.5 * full, "sparse {sparse} vs full {full}");
    }

    #[test]
    fn cumulative_penalty_spans_files() {
        // The Figure 3 mechanism: a *second* file's early writes are slower
        // than the first file's were, because MFFS metadata grew with the
        // cumulative bytes written since format.
        let mut tb = testbed();
        let first = tb.write_file(512 * KIB, 4 * KIB, DataClass::Compressible);
        let second = tb.write_file(512 * KIB, 4 * KIB, DataClass::Compressible);
        assert!(
            second.chunk_latencies_ms[0] > first.chunk_latencies_ms[0],
            "second {} vs first {}",
            second.chunk_latencies_ms[0],
            first.chunk_latencies_ms[0]
        );
    }

    #[test]
    fn read_chunk_matches_read_file_costs() {
        let mut tb = testbed();
        let f = tb.create_file();
        for _ in 0..8 {
            tb.append_chunk(f, 4 * KIB, DataClass::Random);
        }
        let via_file = tb.read_file(f, 4 * KIB, DataClass::Random);
        let single = tb.read_chunk(f, 0, 4 * KIB, DataClass::Random);
        let per_chunk = via_file.total.as_millis_f64() / 8.0;
        assert!((single.as_millis_f64() - per_chunk).abs() < per_chunk * 0.2);
    }

    #[test]
    fn delete_file_releases_live_bytes() {
        let mut tb = testbed();
        let f = tb.install_live_data(64 * KIB);
        assert_eq!(tb.live_bytes(), 64 * KIB);
        tb.delete_file(f);
        assert_eq!(tb.live_bytes(), 0);
        // Deleting twice is harmless.
        tb.delete_file(f);
    }

    #[test]
    fn format_resets_everything() {
        let mut tb = testbed();
        tb.write_file(64 * KIB, 4 * KIB, DataClass::Random);
        assert!(tb.cumulative_written() > 0);
        assert!(tb.live_bytes() > 0);
        tb.format();
        assert_eq!(tb.cumulative_written(), 0);
        assert_eq!(tb.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "past EOF")]
    fn overwrite_past_eof_rejected() {
        let mut tb = testbed();
        let f = tb.install_live_data(8 * KIB);
        let _ = tb.overwrite_chunk(f, 8 * KIB, 4 * KIB, DataClass::Random);
    }
}
