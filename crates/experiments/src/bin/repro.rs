//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale <fraction>] [--seed <n>] [--jobs <n>] [--timings] [targets...]
//! ```
//!
//! Targets: `table1 table2 table3 table4 figure1 figure2 figure3 figure4
//! figure5 async endurance verify battery ablations nextgen sensitivity
//! related reliability observe crashcheck integrity fleet profile
//! durability` (default: all), plus the on-demand target `throughput`
//! (never part of the default list: its stdout carries wall-clock
//! numbers).
//!
//! The `reliability` target takes extra flags: `--fault-rates <a,b,c>`
//! (transient write/erase fault rates to sweep), `--fault-power-interval
//! <secs>` (mean seconds between power failures; 0 disables them), and
//! `--fault-seed <n>` (the fault streams' seed, independent of the
//! workload seed).
//!
//! The `crashcheck` target takes `--crash-points <all|n>` (crash at every
//! op boundary, or at `n` sampled boundaries per grid cell) and
//! `--crash-seed <n>` (the crash-instant jitter seed).
//!
//! The `integrity` target takes `--ber-rates <a,b,c>` (expected raw bit
//! errors per fresh block read, swept one run per rate; must be finite
//! and non-negative), `--scrub-interval <secs>` (background scrub pass
//! period; 0 disables scrubbing), and `--ber-seed <n>` (the bit-error
//! streams' seed, independent of the workload seed).
//!
//! The `fleet` target takes `--fleet-shards <n>` (simulated device
//! shards, positive), `--fleet-population <n>` (users hash-range-mapped
//! onto the shards, positive; default eight per shard), and
//! `--fleet-seed <n>` (the fleet seed every per-shard stream derives
//! from). Its merged metrics are byte-identical at any `--jobs` count.
//!
//! The fleet runs under a **supervisor**: each shard simulates inside
//! `catch_unwind`, a panicking shard is retried up to `--fleet-retries
//! <n>` more times (default 2, deterministically) and then quarantined —
//! the run completes over the survivors, reports the quarantined shards
//! (stdout, and a `quarantined` section in the `mobistore-fleet/1`
//! export block), and the process exits `8` instead of `0`. Long runs
//! are resumable: `--checkpoint-out <file>` persists a versioned
//! `mobistore-fleet-ckpt/1` snapshot of the merged state every
//! `--checkpoint-every <n>` completed chunks (default 1; written
//! atomically via rename), and `--resume-from <file>` validates the
//! checkpoint's configuration fingerprint, skips its completed chunks,
//! and produces stdout and exports **byte-identical** to an
//! uninterrupted run at any `--jobs` count. A mismatched or unreadable
//! checkpoint is a configuration error (exit 3). The hidden chaos knobs
//! `--chaos-panic-rate <p>` (deterministic injected shard panics) and
//! `--chaos-fail-point <n>` (abort the process with exit code `9` after
//! `n` chunks, before that chunk checkpoints — a simulated kill -9)
//! exist to prove those paths end-to-end in tests and CI.
//!
//! The `durability` target takes `--ec <k+m,...>` (comma-separated
//! Reed-Solomon array geometries, each with `k >= 1` data and `m >= 1`
//! parity shards within the 255-shard stripe limit), `--death-rates
//! <a,b,c>` (expected permanent whole-device deaths per device-hour,
//! finite and non-negative), `--rebuild-rate <stripes/s>` (hot-spare
//! rebuild pacing, positive), and `--durability-seed <n>` (the
//! death-schedule seed, independent of the workload seed). Its metrics
//! export carries a versioned `mobistore-durability/1` block.
//!
//! Exit codes are typed: `0` success, `1` I/O failure, `2` usage error,
//! `3` configuration error ([`SimError::Config`], including unusable
//! checkpoints), `4` device error, `5` cache error, `6` degraded array
//! ([`DeviceError::ArrayDegraded`]), `7` failed array
//! ([`DeviceError::ArrayFailed`]), `8` completed with quarantined fleet
//! shards (all artifacts written; rollups cover survivors only), `9`
//! chaos fail-point abort (the supervisor's simulated kill -9).
//!
//! Observability exports: `--events-out <path>` writes the JSONL event
//! stream produced by observing targets (`observe`), `--trace-out
//! <path>` writes those targets' sim-time spans as a Chrome trace-event
//! JSON document (schema `mobistore-trace/1`, loadable in Perfetto or
//! `chrome://tracing`), and `--metrics-out <path>` writes a versioned
//! JSON document with every rendered target's full metrics rows (latency
//! percentiles included). All three artifacts carry sim time only, so
//! they are byte-identical at any `--jobs` count. `--timings-json
//! <path>` writes the per-target wall-clock profile as JSON (the
//! `BENCH_repro.json` feed), with per-target simulated op counts and
//! ops/sec; unlike the sim-time exports it measures the host and is
//! *not* deterministic. `--throughput-json <path>` writes the
//! `throughput` target's `mobistore-throughput/1` document, and
//! `--throughput-reps <n>` sets its timed repetition count. `--progress`
//! prints fleet shard heartbeats to stderr, leaving stdout untouched.
//! The `profile` target prints its deterministic counts to stdout and
//! its wall-clock phase table to stderr.
//!
//! Targets run **concurrently** on a worker pool (`--jobs N`, the
//! `MOBISTORE_JOBS` environment variable, or all available cores), with
//! each target's stdout buffered and flushed in request order — so the
//! output is byte-identical to a `--jobs 1` serial run. Workload traces
//! are generated once per process and shared between targets through the
//! `mobistore_workload::cache` trace cache; `--timings` reports per-target
//! wall-clock and the cache's hit/miss summary on stderr.

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mobistore_core::crashcheck::CrashPoints;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::SimError;
use mobistore_device::DeviceError;
use mobistore_experiments::fleet::FleetOptions;
use mobistore_experiments::render::{try_render_target, RenderOptions, ON_DEMAND_TARGETS, TARGETS};
use mobistore_experiments::{export, Scale};
use mobistore_sim::exec;
use mobistore_sim::prof;
use mobistore_sim::span::{chrome_trace_json, Span};
use mobistore_sim::time::SimDuration;

/// One finished target: rendered output plus its wall-clock time.
struct TargetOutput {
    text: String,
    csvs: Vec<(&'static str, String)>,
    metrics: Vec<Metrics>,
    events_jsonl: Option<String>,
    fleet_info: Option<export::FleetInfo>,
    durability_info: Option<export::DurabilityInfo>,
    span_processes: Vec<(String, Vec<Span>)>,
    host_report: Option<String>,
    throughput_json: Option<String>,
    elapsed: Duration,
    /// Simulated operations this target's simulations replayed.
    ops: u64,
}

fn main() -> ExitCode {
    let started = Instant::now();
    let mut scale = Scale::full();
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut timings = false;
    let mut events_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut timings_json: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut throughput_json: Option<PathBuf> = None;
    let mut render = RenderOptions::default();
    let mut fleet_population_set = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => scale.fraction = v,
                _ => return usage("--scale needs a fraction in (0, 1]"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => scale.seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => exec::set_jobs(v),
                _ => return usage("--jobs needs a positive integer"),
            },
            "--timings" => timings = true,
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => return usage("--csv needs a directory"),
            },
            "--events-out" => match args.next() {
                Some(path) => {
                    events_out = Some(PathBuf::from(path));
                    render.collect_events = true;
                }
                None => return usage("--events-out needs a file path"),
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(PathBuf::from(path)),
                None => return usage("--metrics-out needs a file path"),
            },
            "--timings-json" => match args.next() {
                Some(path) => timings_json = Some(PathBuf::from(path)),
                None => return usage("--timings-json needs a file path"),
            },
            "--trace-out" => match args.next() {
                Some(path) => {
                    trace_out = Some(PathBuf::from(path));
                    render.collect_spans = true;
                }
                None => return usage("--trace-out needs a file path"),
            },
            "--throughput-json" => match args.next() {
                Some(path) => throughput_json = Some(PathBuf::from(path)),
                None => return usage("--throughput-json needs a file path"),
            },
            "--throughput-reps" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(v) if v > 0 => render.throughput.reps = v,
                _ => return usage("--throughput-reps needs a positive integer"),
            },
            "--progress" => render.progress = true,
            "--fault-rates" => match args.next().map(|v| parse_rates(&v)) {
                Some(Some(rates)) => render.reliability.rates = rates,
                _ => {
                    return usage("--fault-rates needs comma-separated rates in [0, 1]");
                }
            },
            "--fault-power-interval" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs >= 0.0 => {
                    render.reliability.power_interval =
                        (secs > 0.0).then(|| SimDuration::from_secs_f64(secs));
                }
                _ => return usage("--fault-power-interval needs seconds (0 disables)"),
            },
            "--fault-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => render.reliability.fault_seed = v,
                None => return usage("--fault-seed needs an integer"),
            },
            "--crash-points" => match args.next().map(|v| parse_crash_points(&v)) {
                Some(Some(points)) => render.crashcheck.points = points,
                _ => return usage("--crash-points needs 'all' or a positive integer"),
            },
            "--crash-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => render.crashcheck.seed = v,
                None => return usage("--crash-seed needs an integer"),
            },
            "--ber-rates" => match args.next().map(|v| parse_ber_rates(&v)) {
                Some(Some(rates)) => render.integrity.rates = rates,
                _ => {
                    return usage("--ber-rates needs comma-separated non-negative error counts");
                }
            },
            "--scrub-interval" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs >= 0.0 && secs.is_finite() => {
                    render.integrity.scrub_interval =
                        (secs > 0.0).then(|| SimDuration::from_secs_f64(secs));
                }
                _ => return usage("--scrub-interval needs seconds (0 disables)"),
            },
            "--ber-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => render.integrity.ber_seed = v,
                None => return usage("--ber-seed needs an integer"),
            },
            "--fleet-shards" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(v) if v > 0 => render.fleet.shards = v,
                _ => return usage("--fleet-shards needs a positive integer"),
            },
            "--fleet-population" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v > 0 => {
                    render.fleet.population = v;
                    fleet_population_set = true;
                }
                _ => return usage("--fleet-population needs a positive integer"),
            },
            "--fleet-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => render.fleet.seed = v,
                None => return usage("--fleet-seed needs an integer"),
            },
            "--fleet-retries" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(v) => render.fleet.retry_budget = v,
                None => return usage("--fleet-retries needs a non-negative integer"),
            },
            "--checkpoint-out" => match args.next() {
                Some(path) => render.fleet.checkpoint_out = Some(PathBuf::from(path)),
                None => return usage("--checkpoint-out needs a file path"),
            },
            "--checkpoint-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v > 0 => render.fleet.checkpoint_every = v,
                _ => return usage("--checkpoint-every needs a positive chunk count"),
            },
            "--resume-from" => match args.next() {
                Some(path) => render.fleet.resume_from = Some(PathBuf::from(path)),
                None => return usage("--resume-from needs a file path"),
            },
            // Hidden chaos knobs (absent from the usage string): they
            // exist so tests and CI can prove the supervisor end-to-end.
            "--chaos-panic-rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && (0.0..=1.0).contains(&v) => {
                    render.fleet.chaos.panic_rate = v;
                }
                _ => return usage("--chaos-panic-rate needs a probability in [0, 1]"),
            },
            "--chaos-fail-point" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v > 0 => render.fleet.chaos.fail_point = Some(v),
                _ => return usage("--chaos-fail-point needs a positive chunk count"),
            },
            "--ec" => match args.next().map(|v| parse_geometries(&v)) {
                Some(Some(geometries)) => render.durability.geometries = geometries,
                _ => {
                    return usage(&format!(
                        "--ec needs comma-separated k+m geometries with k >= 1, \
                         m >= 1, and k+m <= the {}-device stripe limit",
                        mobistore_experiments::durability::MAX_SHARDS
                    ));
                }
            },
            "--death-rates" => match args.next().map(|v| parse_death_rates(&v)) {
                Some(Some(rates)) => render.durability.death_rates = rates,
                _ => {
                    return usage("--death-rates needs comma-separated non-negative rates");
                }
            },
            "--rebuild-rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => render.durability.rebuild_rate = v,
                _ => return usage("--rebuild-rate needs a positive stripes/sec rate"),
            },
            "--durability-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => render.durability.seed = v,
                None => return usage("--durability-seed needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            t if !t.starts_with('-') => targets.push(t.to_owned()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if !fleet_population_set {
        render.fleet.population = FleetOptions::default_population(render.fleet.shards);
    }
    if targets.is_empty() {
        // On-demand targets never join the default expansion: their
        // stdout is wall-clock, and the default list is byte-identical
        // across runs.
        targets = TARGETS.iter().map(|s| (*s).to_owned()).collect();
    }
    if let Some(bad) = targets
        .iter()
        .find(|t| !TARGETS.contains(&t.as_str()) && !ON_DEMAND_TARGETS.contains(&t.as_str()))
    {
        return usage(&format!("unknown target {bad}"));
    }

    eprintln!(
        "# mobistore repro: scale {:.2}, seed {}, jobs {}",
        scale.fraction,
        scale.seed,
        exec::jobs()
    );

    // Run all requested targets concurrently, buffering each target's
    // stdout; flushing in request order keeps the combined output
    // byte-identical to a serial run.
    let rendered: Vec<Result<TargetOutput, SimError>> = exec::parallel_map(&targets, |target| {
        eprintln!("# running {target}...");
        let t0 = Instant::now();
        // A per-target op counter: the simulator credits every run to the
        // thread's context, which parallel_map propagates into nested
        // worker pools, so fan-out targets still attribute correctly.
        let ops = Arc::new(AtomicU64::new(0));
        let r = prof::with_context(ops.clone(), || try_render_target(target, scale, &render))?;
        Ok(TargetOutput {
            text: r.text,
            csvs: r.csvs,
            metrics: r.metrics,
            events_jsonl: r.events_jsonl,
            fleet_info: r.fleet_info,
            durability_info: r.durability_info,
            span_processes: r.span_processes,
            host_report: r.host_report,
            throughput_json: r.throughput_json,
            elapsed: t0.elapsed(),
            ops: ops.load(Ordering::Relaxed),
        })
    });
    let mut results: Vec<TargetOutput> = Vec::with_capacity(rendered.len());
    for (target, r) in targets.iter().zip(rendered) {
        match r {
            Ok(out) => results.push(out),
            Err(e) => {
                eprintln!("error: target {target}: {e}");
                return sim_error_exit(&e);
            }
        }
    }

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for r in &results {
        if lock.write_all(r.text.as_bytes()).is_err() {
            return ExitCode::from(1);
        }
        for (name, contents) in &r.csvs {
            write_csv(&csv_dir, name, contents);
        }
    }
    drop(lock);

    // Wall-clock side reports go to stderr only — stdout stays
    // byte-identical with or without them.
    for (target, r) in targets.iter().zip(&results) {
        if let Some(report) = &r.host_report {
            eprint!("# host profile ({target}):\n{report}");
        }
    }

    if let Some(path) = &trace_out {
        let mut processes: Vec<(String, Vec<Span>)> = Vec::new();
        for r in &results {
            processes.extend(r.span_processes.iter().cloned());
        }
        if processes.is_empty() {
            eprintln!(
                "# --trace-out: no spans collected \
                 (no observing target in the requested set?)"
            );
        }
        write_artifact(path, &chrome_trace_json(&processes), "trace");
    }
    if let Some(path) = &throughput_json {
        match results.iter().find_map(|r| r.throughput_json.as_deref()) {
            Some(doc) => write_artifact(path, doc, "throughput"),
            None => eprintln!(
                "# --throughput-json: the throughput target was not requested; \
                 nothing written"
            ),
        }
    }
    if let Some(path) = &events_out {
        let mut stream = String::new();
        for r in &results {
            if let Some(events) = &r.events_jsonl {
                stream.push_str(events);
            }
        }
        write_artifact(path, &stream, "events");
    }
    if let Some(path) = &metrics_out {
        let per_target: Vec<export::TargetExport<'_>> = targets
            .iter()
            .zip(&results)
            .map(|(t, r)| export::TargetExport {
                target: t.as_str(),
                rows: r.metrics.as_slice(),
                fleet: r.fleet_info.as_ref(),
                durability: r.durability_info.as_ref(),
            })
            .collect();
        write_artifact(path, &export::metrics_json(scale, &per_target), "metrics");
    }
    if let Some(path) = &timings_json {
        write_artifact(
            path,
            &timings_json_doc(&targets, &results, started.elapsed()),
            "timings",
        );
    }

    if timings {
        eprintln!("# timings (jobs={}):", exec::jobs());
        for (target, r) in targets.iter().zip(&results) {
            eprintln!("#   {target:<12} {:>9.3}s", r.elapsed.as_secs_f64());
        }
        let c = mobistore_workload::cache::summary();
        eprintln!(
            "# trace cache: {} generated, {} hits, {} entries ({} lookups)",
            c.misses,
            c.hits,
            c.entries,
            c.lookups()
        );
        eprintln!(
            "# total wall-clock: {:.3}s",
            started.elapsed().as_secs_f64()
        );
    }

    // Every artifact is written by now; a run that quarantined fleet
    // shards completed, but its rollups cover survivors only — exit 8 so
    // scripted callers notice the reduced coverage.
    let quarantined: usize = results
        .iter()
        .filter_map(|r| r.fleet_info.as_ref())
        .map(|f| f.quarantined.len())
        .sum();
    if quarantined > 0 {
        eprintln!(
            "# warning: fleet completed with {quarantined} quarantined shard(s); \
             rollups cover survivors only (exit 8)"
        );
        return ExitCode::from(8);
    }
    ExitCode::SUCCESS
}

/// Renders the `--timings-json` document: wall-clock, simulated op
/// count, and ops/sec per target, plus the trace-cache summary (host
/// profiling — not deterministic). Schema 1.1 adds the `ops` and
/// `ops_per_sec` row fields.
fn timings_json_doc(targets: &[String], results: &[TargetOutput], total: Duration) -> String {
    let mut s = String::from("{\"schema\":\"mobistore-timings/1.1\"");
    let _ = write!(s, ",\"jobs\":{}", exec::jobs());
    s.push_str(",\"targets\":[");
    for (i, (target, r)) in targets.iter().zip(results).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let secs = r.elapsed.as_secs_f64();
        let ops_per_sec = if secs > 0.0 { r.ops as f64 / secs } else { 0.0 };
        let _ = write!(
            s,
            "{{\"target\":\"{target}\",\"seconds\":{secs:.6},\"ops\":{},\
             \"ops_per_sec\":{ops_per_sec:.1}}}",
            r.ops
        );
    }
    let c = mobistore_workload::cache::summary();
    let _ = write!(
        s,
        "],\"trace_cache\":{{\"generated\":{},\"hits\":{},\"entries\":{}}},\
         \"total_seconds\":{:.6}}}",
        c.misses,
        c.hits,
        c.entries,
        total.as_secs_f64()
    );
    s
}

/// Maps a [`SimError`] to its documented exit code: configuration errors
/// exit 3, device errors 4, cache errors 5 — except the typed array
/// failures, which get their own codes: a degraded array (data still
/// reconstructible) exits 6, a failed array (losses past `m`) exits 7.
fn sim_error_exit(e: &SimError) -> ExitCode {
    ExitCode::from(match e {
        SimError::Config(_) => 3,
        SimError::Device(DeviceError::ArrayDegraded { .. }) => 6,
        SimError::Device(DeviceError::ArrayFailed { .. }) => 7,
        SimError::Device(_) => 4,
        SimError::Cache(_) => 5,
    })
}

/// Parses `--crash-points`: `all` for the exhaustive boundary sweep, or a
/// positive sample count.
fn parse_crash_points(s: &str) -> Option<CrashPoints> {
    if s.trim() == "all" {
        return Some(CrashPoints::Exhaustive);
    }
    match s.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(CrashPoints::Sampled(n)),
        _ => None,
    }
}

/// Parses `--ec`: comma-separated `k+m` geometries. Each part must be
/// two positive integers joined by `+`, with `k+m` within the GF(2^8)
/// codec's 255-shard stripe limit — `0+2`, `4+0`, `200+100`, and
/// anything unparsable are usage errors.
fn parse_geometries(s: &str) -> Option<Vec<(usize, usize)>> {
    let geometries: Option<Vec<(usize, usize)>> = s
        .split(',')
        .map(|part| {
            let (k, m) = part.trim().split_once('+')?;
            match (k.trim().parse::<usize>(), m.trim().parse::<usize>()) {
                (Ok(k), Ok(m))
                    if k >= 1
                        && m >= 1
                        && k + m <= mobistore_experiments::durability::MAX_SHARDS =>
                {
                    Some((k, m))
                }
                _ => None,
            }
        })
        .collect();
    geometries.filter(|g| !g.is_empty())
}

/// Parses `--death-rates`: comma-separated expected device deaths per
/// device-hour. Not capped at 1 — they are rates, not probabilities —
/// but they must be finite and `>= 0`.
fn parse_death_rates(s: &str) -> Option<Vec<f64>> {
    let rates: Option<Vec<f64>> = s
        .split(',')
        .map(|part| match part.trim().parse::<f64>() {
            Ok(r) if r.is_finite() && r >= 0.0 => Some(r),
            _ => None,
        })
        .collect();
    rates.filter(|r| !r.is_empty())
}

/// Parses `--fault-rates`: comma-separated probabilities in `[0, 1]`.
fn parse_rates(s: &str) -> Option<Vec<f64>> {
    let rates: Option<Vec<f64>> = s
        .split(',')
        .map(|part| match part.trim().parse::<f64>() {
            Ok(r) if r.is_finite() && (0.0..=1.0).contains(&r) => Some(r),
            _ => None,
        })
        .collect();
    rates.filter(|r| !r.is_empty())
}

/// Parses `--ber-rates`: comma-separated expected raw error counts.
/// Unlike fault probabilities these are not capped at 1 — they are
/// Poisson means per block read — but they must be finite and `>= 0`.
fn parse_ber_rates(s: &str) -> Option<Vec<f64>> {
    let rates: Option<Vec<f64>> = s
        .split(',')
        .map(|part| match part.trim().parse::<f64>() {
            Ok(r) if r.is_finite() && r >= 0.0 => Some(r),
            _ => None,
        })
        .collect();
    rates.filter(|r| !r.is_empty())
}

/// Writes one CSV file into the `--csv` directory, if one was given.
fn write_csv(dir: &Option<PathBuf>, name: &str, contents: &str) {
    let Some(dir) = dir else { return };
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// Writes one export artifact, logging like `write_csv`.
fn write_artifact(path: &PathBuf, contents: &str, what: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return;
            }
        }
    }
    match fs::write(path, contents) {
        Ok(()) => eprintln!("# wrote {what} to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale <0..1]] [--seed <n>] [--jobs <n>] [--timings] [--csv <dir>] \
         [--events-out <file>] [--trace-out <file>] [--metrics-out <file>] \
         [--timings-json <file>] [--throughput-json <file>] [--throughput-reps <n>] \
         [--progress] \
         [--fault-rates <a,b,c>] [--fault-power-interval <secs>] [--fault-seed <n>] \
         [--crash-points <all|n>] [--crash-seed <n>] \
         [--ber-rates <a,b,c>] [--scrub-interval <secs>] [--ber-seed <n>] \
         [--fleet-shards <n>] [--fleet-population <n>] [--fleet-seed <n>] \
         [--fleet-retries <n>] [--checkpoint-out <file>] [--checkpoint-every <n>] \
         [--resume-from <file>] \
         [--ec <k+m,...>] [--death-rates <a,b,c>] [--rebuild-rate <stripes/s>] \
         [--durability-seed <n>] \
         [table1|table2|table3|table4|figure1|figure2|figure3|figure4|figure5|async|endurance|\
         verify|battery|ablations|nextgen|sensitivity|related|reliability|observe|crashcheck|\
         integrity|fleet|profile|durability|throughput ...]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
